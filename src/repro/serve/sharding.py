"""Deterministic EPC → shard routing for the sharded tracking service.

Every tag's whole lifetime must land on exactly one shard — the
resampler timeline, trace state and eviction clock for an EPC live in
that shard's :class:`~repro.stream.manager.SessionManager`, so routing
is the correctness boundary of the whole service. The hash is
:func:`zlib.crc32` over the EPC bytes: stable across processes, Python
versions and runs (Python's built-in ``hash`` is salted per process and
must never be used for cross-process placement).
"""

from __future__ import annotations

import zlib

__all__ = ["shard_for", "split_burst"]


def shard_for(epc_hex: str, shards: int) -> int:
    """The shard index owning a tag, in ``[0, shards)``.

    Deterministic across processes and runs for a fixed shard count —
    the property the shard-determinism test suite pins down.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return zlib.crc32(epc_hex.encode("utf-8")) % shards


def split_burst(reports, shards: int) -> list[list]:
    """Partition a report burst by owning shard, preserving order.

    Within each returned sublist the original arrival order is kept, so
    each shard sees exactly the subsequence of the stream it would have
    seen from a per-shard reader — the invariant that makes sharded
    replays bit-identical per EPC to a single manager.
    """
    buckets: list[list] = [[] for _ in range(shards)]
    for report in reports:
        buckets[shard_for(report.epc_hex, shards)].append(report)
    return buckets
