"""Antennas, antenna pairs and deployments.

Terminology follows the paper. A *deployment* is the full set of reader
antennas; an *antenna pair* ``<i, j>`` measures the phase difference
``Δφ_{j,i} = φ_j − φ_i`` of a tag reply, which constrains the tag to lie on
hyperbolas of constant path difference ``Δd_{i,j} = d(S, i) − d(S, j)``
(paper Eq. 2)::

    round_trip · Δd_{i,j} / λ  =  Δφ_{j,i} / 2π  +  k,   k ∈ ℤ

``round_trip`` is 2 for RFID backscatter (footnote 3 of the paper) and 1 for
a one-way transmitter.

The paper only compares phases of antennas attached to the *same* reader,
because distinct readers have unknown LO phase offsets (section 3.5). The
:class:`Deployment` pair enumeration enforces the same rule.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.vectors import as_point, as_points, distances_to

__all__ = ["Antenna", "AntennaPair", "Deployment"]


@dataclass(frozen=True)
class Antenna:
    """One reader antenna port.

    Attributes:
        antenna_id: globally unique id (paper numbers them 1..8).
        position: 3-D mount position in metres (wall plane is ``y = 0``).
        reader_id: id of the reader this antenna's port belongs to.
        port: port index on that reader (0..3 for a 4-port reader).
    """

    antenna_id: int
    position: np.ndarray
    reader_id: int = 0
    port: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_point(self.position))

    def distance_to(self, points) -> np.ndarray:
        """Distance from this antenna to one point (scalar) or many (array)."""
        pts = np.asarray(points, dtype=float)
        scalar = pts.ndim == 1
        result = distances_to(self.position, as_points(pts))
        return float(result[0]) if scalar else result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        x, y, z = self.position
        return (
            f"Antenna(id={self.antenna_id}, reader={self.reader_id}, "
            f"pos=({x:.3f}, {y:.3f}, {z:.3f}))"
        )


@dataclass(frozen=True)
class AntennaPair:
    """An ordered pair of antennas ``<first, second>`` on the same reader.

    The pair's measurement convention matches the paper: the phase difference
    it observes is ``Δφ = φ(second) − φ(first)`` and the path difference it
    constrains is ``Δd = d(P, first) − d(P, second)``.
    """

    first: Antenna
    second: Antenna

    def __post_init__(self) -> None:
        if self.first.antenna_id == self.second.antenna_id:
            raise ValueError("an antenna pair needs two distinct antennas")
        if self.first.reader_id != self.second.reader_id:
            raise ValueError(
                "cross-reader antenna pairs are not usable: readers have "
                "unknown relative LO phase offsets (paper section 3.5)"
            )
        # Derived geometry is immutable (antennas are frozen), and the
        # hot loops read `separation`/`baseline`/`midpoint` on every
        # call — compute each once here instead of per access. The
        # cached arrays are shared across accesses, so mark them
        # read-only: mutating the returned array (previously a fresh
        # copy per access) now raises instead of silently corrupting
        # the pair's geometry.
        diff = self.second.position - self.first.position
        separation = float(np.linalg.norm(diff))
        baseline = diff / separation
        midpoint = (self.first.position + self.second.position) / 2.0
        baseline.setflags(write=False)
        midpoint.setflags(write=False)
        object.__setattr__(self, "_separation", separation)
        object.__setattr__(self, "_baseline", baseline)
        object.__setattr__(self, "_midpoint", midpoint)

    @property
    def reader_id(self) -> int:
        return self.first.reader_id

    @property
    def ids(self) -> tuple[int, int]:
        return (self.first.antenna_id, self.second.antenna_id)

    @property
    def separation(self) -> float:
        """Physical distance between the two antennas, in metres."""
        return self._separation

    @property
    def midpoint(self) -> np.ndarray:
        return self._midpoint

    @property
    def baseline(self) -> np.ndarray:
        """Unit vector pointing from ``first`` to ``second``."""
        return self._baseline

    def path_difference(self, points) -> np.ndarray:
        """``Δd = d(P, first) − d(P, second)`` for one or many points ``P``."""
        pts = np.asarray(points, dtype=float)
        scalar = pts.ndim == 1
        pts = as_points(pts)
        delta = distances_to(self.first.position, pts) - distances_to(
            self.second.position, pts
        )
        return float(delta[0]) if scalar else delta

    def max_lobe_count(self, wavelength: float, round_trip: float = 2.0) -> int:
        """Number of integers ``k`` with a feasible direction, ≈ lobe count.

        ``|Δd| ≤ D`` bounds ``k`` to an interval of width
        ``2 · round_trip · D / λ``; the count of integers inside is the
        number of grating lobes (paper section 3.2: ``D = K λ/2`` gives
        ``K`` lobes for one-way operation).
        """
        span = 2.0 * round_trip * self.separation / wavelength
        return int(np.floor(span / 2.0) * 2 + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AntennaPair<{self.first.antenna_id},{self.second.antenna_id}>"
            f"(reader={self.reader_id}, D={self.separation:.3f} m)"
        )


@dataclass
class Deployment:
    """A set of reader antennas with pair-enumeration helpers."""

    antennas: list[Antenna] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = [antenna.antenna_id for antenna in self.antennas]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate antenna ids in deployment: {ids}")
        self._reindex()

    def _reindex(self) -> None:
        self._index_by_id = {
            antenna.antenna_id: position
            for position, antenna in enumerate(self.antennas)
        }

    def __len__(self) -> int:
        return len(self.antennas)

    def __iter__(self):
        return iter(self.antennas)

    def antenna(self, antenna_id: int) -> Antenna:
        # `antennas` is a public list, so the id index can go stale if
        # it is mutated after construction (the linear scan this
        # replaced tolerated that). An O(1) validation catches every
        # mutation kind — append, removal, or in-place replacement —
        # and triggers a rebuild before answering.
        position = self._index_by_id.get(antenna_id)
        if (
            position is None
            or position >= len(self.antennas)
            or self.antennas[position].antenna_id != antenna_id
        ):
            self._reindex()
            position = self._index_by_id.get(antenna_id)
            if position is None:
                raise KeyError(f"no antenna with id {antenna_id}")
        return self.antennas[position]

    @property
    def reader_ids(self) -> list[int]:
        seen: list[int] = []
        for antenna in self.antennas:
            if antenna.reader_id not in seen:
                seen.append(antenna.reader_id)
        return seen

    def antennas_of_reader(self, reader_id: int) -> list[Antenna]:
        return [a for a in self.antennas if a.reader_id == reader_id]

    def pair(self, first_id: int, second_id: int) -> AntennaPair:
        return AntennaPair(self.antenna(first_id), self.antenna(second_id))

    def pairs(
        self,
        reader_id: int | None = None,
        min_separation: float = 0.0,
        max_separation: float = float("inf"),
    ) -> list[AntennaPair]:
        """All same-reader pairs, optionally filtered by reader and separation.

        Pairs are ordered by ascending antenna ids, matching the paper's
        ``<i, j>`` notation (e.g. ``<5, 6>``).
        """
        pairs = []
        for first, second in itertools.combinations(self.antennas, 2):
            if first.reader_id != second.reader_id:
                continue
            if reader_id is not None and first.reader_id != reader_id:
                continue
            pair = AntennaPair(first, second)
            if min_separation <= pair.separation <= max_separation:
                pairs.append(pair)
        return pairs

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned (min, max) corners of the antenna positions."""
        positions = np.stack([a.position for a in self.antennas])
        return positions.min(axis=0), positions.max(axis=0)
