"""The virtual touch screen plane.

RF-IDraw "can transform any plane or surface into a virtual touch screen".
This module represents such a plane: a 2-D coordinate frame ``(u, v)``
embedded in the 3-D room. Reader antennas are mounted on the wall plane
``y = 0``; the standard writing plane is parallel to the wall at the user's
distance (2–5 m in the paper's evaluation), with ``u`` along the room's
``x`` axis and ``v`` along the vertical ``z`` axis — matching the paper's
figures, which plot trajectories in ``x``/``z`` metres.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vectors import as_point, unit

__all__ = ["WritingPlane", "writing_plane"]


@dataclass(frozen=True)
class WritingPlane:
    """A 2-D frame ``origin + u·u_axis + v·v_axis`` embedded in 3-D space."""

    origin: np.ndarray
    u_axis: np.ndarray
    v_axis: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "origin", as_point(self.origin))
        object.__setattr__(self, "u_axis", unit(as_point(self.u_axis)))
        object.__setattr__(self, "v_axis", unit(as_point(self.v_axis)))
        if abs(float(np.dot(self.u_axis, self.v_axis))) > 1e-9:
            raise ValueError("plane axes must be orthogonal")

    @property
    def normal(self) -> np.ndarray:
        return np.cross(self.u_axis, self.v_axis)

    def to_world(self, uv) -> np.ndarray:
        """Map plane coordinates ``(u, v)`` (single or ``(N, 2)``) to 3-D."""
        coords = np.asarray(uv, dtype=float)
        scalar = coords.ndim == 1
        coords = np.atleast_2d(coords)
        if coords.shape[1] != 2:
            raise ValueError(f"expected (N, 2) plane coordinates, got {coords.shape}")
        world = (
            self.origin
            + coords[:, 0:1] * self.u_axis
            + coords[:, 1:2] * self.v_axis
        )
        return world[0] if scalar else world

    def to_plane(self, points) -> np.ndarray:
        """Project 3-D ``points`` into plane coordinates (drops the normal part)."""
        pts = np.asarray(points, dtype=float)
        scalar = pts.ndim == 1
        pts = np.atleast_2d(pts) - self.origin
        coords = np.stack([pts @ self.u_axis, pts @ self.v_axis], axis=1)
        return coords[0] if scalar else coords

    def grid(
        self,
        u_range: tuple[float, float],
        v_range: tuple[float, float],
        step: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Regular grid on the plane.

        Returns:
            ``(points, us, vs)`` where ``points`` is ``(len(vs)·len(us), 3)``
            in world coordinates ordered row-major over ``(v, u)``, and
            ``us``/``vs`` are the 1-D axis samples. Reshape a per-point
            quantity with ``values.reshape(len(vs), len(us))``.
        """
        if step <= 0:
            raise ValueError("grid step must be positive")
        us = np.arange(u_range[0], u_range[1] + step / 2, step)
        vs = np.arange(v_range[0], v_range[1] + step / 2, step)
        uu, vv = np.meshgrid(us, vs)
        coords = np.stack([uu.ravel(), vv.ravel()], axis=1)
        return self.to_world(coords), us, vs

    def distance_of(self, points) -> np.ndarray:
        """Signed normal distance of 3-D points from the plane."""
        pts = np.atleast_2d(np.asarray(points, dtype=float)) - self.origin
        out = pts @ self.normal
        return float(out[0]) if np.asarray(points).ndim == 1 else out


def writing_plane(distance: float, x_axis_flip: bool = False) -> WritingPlane:
    """The standard virtual touch screen: parallel to the wall at ``y = distance``.

    ``u`` runs along the room's ``x`` axis, ``v`` along the vertical ``z``
    axis, so plane coordinates read directly as the paper's ``x (m)`` /
    ``z (m)`` plot axes.
    """
    if distance <= 0:
        raise ValueError("the writing plane must be in front of the wall")
    u_axis = np.array([-1.0, 0.0, 0.0]) if x_axis_flip else np.array([1.0, 0.0, 0.0])
    return WritingPlane(
        origin=np.array([0.0, float(distance), 0.0]),
        u_axis=u_axis,
        v_axis=np.array([0.0, 0.0, 1.0]),
    )
