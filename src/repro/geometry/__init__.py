"""Antenna geometry: antennas, pairs, deployments, layouts and planes."""

from repro.geometry.antennas import Antenna, AntennaPair, Deployment
from repro.geometry.layouts import (
    aoa_baseline_layout,
    linear_array,
    rfidraw_layout,
)
from repro.geometry.plane import WritingPlane, writing_plane

__all__ = [
    "Antenna",
    "AntennaPair",
    "Deployment",
    "aoa_baseline_layout",
    "linear_array",
    "rfidraw_layout",
    "WritingPlane",
    "writing_plane",
]
