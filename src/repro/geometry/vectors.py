"""Small vector helpers shared by the geometry modules.

All positions in the library are 3-D ``numpy`` arrays in metres. The wall on
which reader antennas are mounted is the plane ``y = 0``; the user writes in
a plane parallel to it (see :mod:`repro.geometry.plane`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_point",
    "as_points",
    "points_view",
    "distances_to",
    "unit",
]


def as_point(value) -> np.ndarray:
    """Coerce ``value`` to a float 3-vector.

    2-D inputs ``(x, z)`` are lifted onto the wall plane ``y = 0`` — a
    convenience for the conceptual, in-plane figures of the paper.

    Raises:
        ValueError: if ``value`` is not length 2 or 3.
    """
    arr = np.asarray(value, dtype=float)
    if arr.shape == (2,):
        return np.array([arr[0], 0.0, arr[1]])
    if arr.shape == (3,):
        return arr.copy()
    raise ValueError(f"expected a 2- or 3-vector, got shape {arr.shape}")


def as_points(values) -> np.ndarray:
    """Coerce ``values`` to an ``(N, 3)`` float array (single points allowed)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        return as_point(arr)[np.newaxis, :]
    if arr.ndim == 2 and arr.shape[1] == 2:
        lifted = np.zeros((arr.shape[0], 3))
        lifted[:, 0] = arr[:, 0]
        lifted[:, 2] = arr[:, 1]
        return lifted
    if arr.ndim == 2 and arr.shape[1] == 3:
        return arr.astype(float, copy=True)
    raise ValueError(f"expected (N, 2) or (N, 3) points, got shape {arr.shape}")


def points_view(values) -> np.ndarray:
    """Like :func:`as_points` but without the defensive copy.

    Read-only consumers (the vectorized vote/trace engine) call this on
    every evaluation; a well-formed ``(N, 3)`` float array passes through
    untouched, anything else goes through :func:`as_points`. Callers must
    not mutate the result.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 2 and arr.shape[1] == 3:
        return arr
    return as_points(arr)


def distances_to(origin: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from ``origin`` (3,) to ``points`` (..., 3)."""
    return np.linalg.norm(np.asarray(points, dtype=float) - origin, axis=-1)


def unit(vector: np.ndarray) -> np.ndarray:
    """Normalise ``vector``; raises on zero-length input."""
    vector = np.asarray(vector, dtype=float)
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        raise ValueError("cannot normalise a zero vector")
    return vector / norm
