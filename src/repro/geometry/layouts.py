"""Deployment layouts used by the paper's prototype and baseline.

Two layouts are reproduced from section 6 ("Implementation"):

* :func:`rfidraw_layout` — RF-IDraw's 8 antennas on two 4-port readers.
  Reader 1 drives the four *widely spaced* antennas (ids 1–4) at the corners
  of an ``8λ × 8λ`` square (8λ ≈ 2.6 m at 922 MHz). Reader 2 drives the four
  *tightly spaced* antennas (ids 5–8) arranged as two pairs, ``<5,6>``
  vertical at the left edge midpoint and ``<7,8>`` horizontal at the bottom
  edge midpoint. Because RFID backscatter doubles the phase-per-metre, the
  tight pairs are separated by **λ/4** (not λ/2) so each has a single beam.

* :func:`aoa_baseline_layout` — the compared scheme: two uniform linear
  4-antenna arrays with λ/4 element spacing, one along the left edge of the
  same square and one along the bottom edge.

All layouts are mounted on the wall plane ``y = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.antennas import Antenna, Deployment

__all__ = ["rfidraw_layout", "aoa_baseline_layout", "linear_array"]

#: Reader id used for the widely spaced (corner) antennas.
WIDE_READER = 1
#: Reader id used for the tightly spaced (filter) antennas.
TIGHT_READER = 2


def rfidraw_layout(
    wavelength: float,
    side_in_wavelengths: float = 8.0,
    tight_spacing_in_wavelengths: float = 0.25,
    origin: tuple[float, float] = (0.0, 0.0),
) -> Deployment:
    """RF-IDraw's two-reader, 8-antenna deployment (paper Fig. 6(d), §6).

    Args:
        wavelength: carrier wavelength λ in metres.
        side_in_wavelengths: square side, in λ (paper: 8λ ≈ 2.6 m).
        tight_spacing_in_wavelengths: tight pair spacing, in λ (paper: λ/4,
            the backscatter equivalent of the classic λ/2 no-ambiguity bound).
        origin: ``(x, z)`` of the square's bottom-left corner on the wall.

    Returns:
        A :class:`~repro.geometry.antennas.Deployment` with antennas 1–4 on
        reader 1 (corners, counter-clockwise from bottom-left) and antennas
        5–8 on reader 2 (tight pairs).
    """
    if wavelength <= 0:
        raise ValueError("wavelength must be positive")
    side = side_in_wavelengths * wavelength
    gap = tight_spacing_in_wavelengths * wavelength
    x0, z0 = origin

    def wall(x: float, z: float) -> np.ndarray:
        return np.array([x, 0.0, z])

    corners = [
        Antenna(1, wall(x0, z0), reader_id=WIDE_READER, port=0),
        Antenna(2, wall(x0 + side, z0), reader_id=WIDE_READER, port=1),
        Antenna(3, wall(x0 + side, z0 + side), reader_id=WIDE_READER, port=2),
        Antenna(4, wall(x0, z0 + side), reader_id=WIDE_READER, port=3),
    ]
    # Pair <5,6>: vertical, centred on the left edge midpoint.
    # Pair <7,8>: horizontal, centred on the bottom edge midpoint.
    tight = [
        Antenna(5, wall(x0, z0 + side / 2 - gap / 2), reader_id=TIGHT_READER, port=0),
        Antenna(6, wall(x0, z0 + side / 2 + gap / 2), reader_id=TIGHT_READER, port=1),
        Antenna(7, wall(x0 + side / 2 - gap / 2, z0), reader_id=TIGHT_READER, port=2),
        Antenna(8, wall(x0 + side / 2 + gap / 2, z0), reader_id=TIGHT_READER, port=3),
    ]
    return Deployment(corners + tight)


def linear_array(
    start_id: int,
    center: tuple[float, float],
    direction: tuple[float, float],
    count: int,
    spacing: float,
    reader_id: int,
) -> list[Antenna]:
    """A uniform linear array of ``count`` antennas on the wall.

    Args:
        start_id: antenna id of the first element (ids are consecutive).
        center: ``(x, z)`` of the array centre on the wall.
        direction: ``(x, z)`` direction of the array axis (normalised here).
        count: number of elements.
        spacing: inter-element spacing in metres.
        reader_id: reader the elements are attached to.
    """
    if count < 2:
        raise ValueError("a linear array needs at least 2 elements")
    axis = np.asarray(direction, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0:
        raise ValueError("array direction must be non-zero")
    axis = axis / norm
    cx, cz = center
    offsets = (np.arange(count) - (count - 1) / 2.0) * spacing
    return [
        Antenna(
            start_id + index,
            np.array([cx + offset * axis[0], 0.0, cz + offset * axis[1]]),
            reader_id=reader_id,
            port=index,
        )
        for index, offset in enumerate(offsets)
    ]


def aoa_baseline_layout(
    wavelength: float,
    side_in_wavelengths: float = 8.0,
    element_spacing_in_wavelengths: float = 0.25,
    origin: tuple[float, float] = (0.0, 0.0),
) -> Deployment:
    """The compared antenna-array scheme's deployment (paper §6).

    Two 4-antenna uniform linear arrays with λ/4 element spacing (again the
    backscatter equivalent of λ/2): one placed along the left edge of the
    RF-IDraw square, one along the bottom edge. Each array is one reader.
    """
    side = side_in_wavelengths * wavelength
    spacing = element_spacing_in_wavelengths * wavelength
    x0, z0 = origin
    left = linear_array(
        1, center=(x0, z0 + side / 2), direction=(0.0, 1.0), count=4,
        spacing=spacing, reader_id=1,
    )
    bottom = linear_array(
        5, center=(x0 + side / 2, z0), direction=(1.0, 0.0), count=4,
        spacing=spacing, reader_id=2,
    )
    return Deployment(left + bottom)
