"""One session-config surface for every tier of the tracking stack.

Before this existed, the same tunables were spelled as loose keyword
arguments in three places — ``TrackingSession(...)`` /
``SessionManager(..., **session_kwargs)``, ``RFIDrawSystem.open_session``
and ``RFIDrawSystem.reconstruct_log`` — which meant three slightly
different defaults to keep in sync and no way to hand "the production
ingest policy" around as a value. :class:`SessionConfig` folds them into
one frozen, validated dataclass accepted by all three tiers (and by the
sharded :class:`repro.serve.TrackingService`, which must ship the exact
same policy to every worker process):

    config = SessionConfig(out_of_order="drop", prune_margin=4.0,
                           idle_timeout=30.0, retain_results=256)
    manager = SessionManager(system, config=config)
    session = system.open_session(config=config)
    result = system.reconstruct_log(log, config=config)

The old keyword arguments keep working through a deprecation shim
(:func:`fold_legacy_kwargs`) so existing callers migrate on their own
schedule; passing both a config and legacy keywords is an error rather
than a silent merge.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace

__all__ = ["SessionConfig", "CONFIG_FIELDS", "fold_legacy_kwargs"]

#: Fields forwarded to the ``TrackingSession`` constructor (the rest are
#: manager-level policy the session never sees).
_SESSION_FIELDS = (
    "sample_rate",
    "min_reads_per_antenna",
    "candidate_count",
    "out_of_order",
    "retain_reports",
    "prune_margin",
    "prune_burn_in",
)
_MANAGER_FIELDS = ("idle_timeout", "max_sessions", "retain_results")


@dataclass(frozen=True)
class SessionConfig:
    """Every tracking-session and manager tunable, as one frozen value.

    Per-session knobs (see :class:`repro.stream.session.TrackingSession`
    for the full semantics of each):

    Attributes:
        sample_rate: shared resample timeline rate in Hz.
        min_reads_per_antenna: the batch dead-antenna threshold.
        candidate_count: how many initial candidates to trace (``None``:
            the positioner's configured count).
        out_of_order: ``"raise"`` (strict) or ``"drop"`` (robust ingest:
            stale arrivals and non-finite phases are counted + skipped).
        retain_reports: keep raw reports for the degenerate-stream batch
            fallback; disable for bounded memory on healthy streams.
        prune_margin: steady-state candidate pruning margin (``None``
            disables pruning; any positive value is winner-preserving).
        prune_burn_in: steps before pruning may begin.

    Manager/service-level policy (see
    :class:`repro.stream.manager.SessionManager`):

    Attributes:
        idle_timeout: auto-finalize a tag silent for this many *report*
            seconds behind the stream frontier (``None``: never).
        max_sessions: cap on concurrently open sessions (LRU eviction;
            per shard when used with :class:`repro.serve.TrackingService`).
        retain_results: cap on retained closed-session history.
    """

    sample_rate: float = 20.0
    min_reads_per_antenna: int = 4
    candidate_count: int | None = None
    out_of_order: str = "raise"
    retain_reports: bool = True
    prune_margin: float | None = None
    prune_burn_in: int = 8
    idle_timeout: float | None = None
    max_sessions: int | None = None
    retain_results: int | None = None

    def __post_init__(self) -> None:
        if not self.sample_rate > 0:
            raise ValueError("sample_rate must be positive")
        if int(self.min_reads_per_antenna) < 1:
            raise ValueError("min_reads_per_antenna must be at least 1")
        if self.candidate_count is not None and int(self.candidate_count) < 1:
            raise ValueError("candidate_count must be at least 1")
        if self.out_of_order not in ("raise", "drop"):
            raise ValueError('out_of_order must be "raise" or "drop"')
        if self.prune_margin is not None and not float(self.prune_margin) > 0:
            raise ValueError("prune_margin must be positive")
        if int(self.prune_burn_in) < 1:
            raise ValueError("prune_burn_in must be at least 1")
        if self.idle_timeout is not None and not self.idle_timeout > 0:
            raise ValueError("idle_timeout must be positive")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must allow at least one session")
        if self.retain_results is not None and self.retain_results < 0:
            raise ValueError("retain_results must be non-negative")

    def session_kwargs(self) -> dict:
        """The per-session subset, as ``TrackingSession`` keywords."""
        return {name: getattr(self, name) for name in _SESSION_FIELDS}

    def with_updates(self, **changes) -> "SessionConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)


#: Every :class:`SessionConfig` field name — facades that accept mixed
#: keyword arguments use this to split tunables from passthrough keys.
CONFIG_FIELDS = frozenset(f.name for f in fields(SessionConfig))


def fold_legacy_kwargs(
    config: SessionConfig | None,
    legacy: dict,
    owner: str,
) -> tuple[SessionConfig, dict]:
    """Resolve ``config=`` vs. old-style keyword arguments.

    Args:
        config: the explicit :class:`SessionConfig`, if any.
        legacy: keyword arguments the caller passed the old way; known
            :class:`SessionConfig` fields are folded into the returned
            config (with a :class:`DeprecationWarning`), unknown keys
            are returned untouched for the callee to forward (e.g.
            ``pairs=`` / ``epc_hex=`` on a session constructor).
        owner: the API being called, for the warning/error text.

    Returns:
        ``(effective_config, passthrough_kwargs)``.

    Raises:
        ValueError: both a config and legacy tunables were given — an
            ambiguous merge this shim refuses to guess about.
    """
    tunables = {k: v for k, v in legacy.items() if k in CONFIG_FIELDS}
    passthrough = {k: v for k, v in legacy.items() if k not in CONFIG_FIELDS}
    if not tunables:
        return config if config is not None else SessionConfig(), passthrough
    if config is not None:
        raise ValueError(
            f"{owner}: pass tunables inside config=SessionConfig(...), "
            "not alongside it (got both config= and "
            + ", ".join(sorted(tunables)) + ")"
        )
    warnings.warn(
        f"{owner}: passing {', '.join(sorted(tunables))} as loose keyword "
        "arguments is deprecated; pass config=SessionConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return SessionConfig(**tunables), passthrough
