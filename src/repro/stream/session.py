"""Per-tag streaming tracking sessions.

A :class:`TrackingSession` is the online form of the batch pipeline: it
ingests individual :class:`~repro.rfid.reader.PhaseReport`\\ s, maintains
per-antenna unwrap/interpolation state incrementally (through
:class:`repro.stream.resampler.StreamResampler`), runs the
multi-resolution positioner once the warm-up instant fills, then advances
the engine's :class:`~repro.core.engine.BatchedTracer` step by step via
its incremental ``begin``/``step``/``finish`` API — emitting a
:class:`TrajectoryPoint` per timeline instant with bounded per-report
work.

The design invariant, enforced by ``tests/test_stream_session.py``:
feeding a finished log report-by-report and calling :meth:`finalize`
produces the *same* :class:`~repro.core.pipeline.ReconstructionResult` as
the batch ``RFIDrawSystem.reconstruct`` on that log — the batch facade is
in fact implemented on top of this class (:meth:`ingest_series`).

Lifecycle::

    WARMING ──(warm-up instant fills: positioner runs)──▶ TRACKING
    TRACKING ──(finalize)──▶ FINALIZED

Degenerate streams (an antenna that never reaches the minimum read
count, or a log too short for the timeline to start) fall back, at
finalize time, to the batch series builder over the retained reports —
so the session never answers differently from the batch path, it only
answers *earlier* when the stream is healthy.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.core.engine import TraceState
from repro.core.pipeline import ReconstructionResult, RFIDrawSystem
from repro.core.positioning import PositionCandidate
from repro.geometry.antennas import AntennaPair
from repro.rf.phase import wrap_to_pi
from repro.rfid.reader import PhaseReport
from repro.rfid.sampling import (
    MeasurementLog,
    PairSeries,
    PhaseSnapshot,
    build_pair_series,
)
from repro.stream.resampler import PairSample, StreamResampler

__all__ = ["SessionState", "TrajectoryPoint", "TrackingSession"]


class SessionState(enum.Enum):
    """Where a session is in its lifecycle."""

    WARMING = "warming"
    TRACKING = "tracking"
    FINALIZED = "finalized"


@dataclass(frozen=True)
class TrajectoryPoint:
    """One emitted trajectory instant (provisional until finalize).

    Attributes:
        index: timeline index of this instant.
        time: the instant, in seconds.
        position: ``(2,)`` plane position of the *currently best*
            candidate (highest running vote sum) — the final trajectory
            re-reads every instant from the candidate that wins overall.
        candidate_index: which candidate supplied :attr:`position`.
        vote: that candidate's Eq. 7 vote at this instant.
    """

    index: int
    time: float
    position: np.ndarray
    candidate_index: int
    vote: float


class TrackingSession:
    """Online reconstruction of one tag's trajectory.

    Args:
        system: the (batch) pipeline facade supplying the deployment,
            plane, positioner and tracer. Streaming reuses its exact
            components, which is what makes streaming ≡ batch.
        epc_hex: only ingest reports of this tag — reports of other
            tags are silently skipped (counted in
            :attr:`skipped_foreign_reports`), mirroring the batch
            builder's per-EPC filter. ``None`` accepts the first EPC
            seen, pins to it, and then treats a different EPC as a
            routing error (use a
            :class:`~repro.stream.manager.SessionManager` to
            demultiplex tags).
        pairs: antenna pairs to difference (default: all same-reader
            pairs of the system's deployment — the batch default).
        sample_rate: shared timeline rate in Hz.
        min_reads_per_antenna: the batch dead-antenna threshold.
        candidate_count: how many initial candidates to trace (default:
            the positioner's configured count).
        out_of_order: per-antenna timestamp policy, see
            :class:`~repro.stream.resampler.StreamResampler`. Under
            ``"drop"``, non-finite phase samples from a flaky reader are
            likewise counted in the resampler's ``dropped_reports`` and
            skipped instead of killing the session.
        retain_reports: keep raw reports so degenerate streams can fall
            back to the batch builder at finalize. Disable for bounded
            memory on healthy long-running streams.
        prune_margin: steady-state cost knob — drop trace candidates
            whose running vote sum trails the leader's by more than this
            margin, shrinking the per-step batched solve. Safe for any
            positive value: the engine resumes a dropped candidate at
            finalize whenever its frozen sum does not already prove it a
            loser (see :meth:`repro.core.engine.BatchedTracer.begin`),
            so the chosen trajectory is always identical to the
            unpruned batch answer; only the per-candidate diagnostics of
            certified losers are omitted from the result. ``None``
            (default) disables pruning.
        prune_burn_in: steps before pruning may begin.
    """

    def __init__(
        self,
        system: RFIDrawSystem,
        epc_hex: str | None = None,
        pairs: list[AntennaPair] | None = None,
        sample_rate: float = 20.0,
        min_reads_per_antenna: int = 4,
        candidate_count: int | None = None,
        out_of_order: str = "raise",
        retain_reports: bool = True,
        prune_margin: float | None = None,
        prune_burn_in: int = 8,
    ) -> None:
        self.system = system
        self.epc_hex = epc_hex
        self._epc_filtering = epc_hex is not None
        self.skipped_foreign_reports = 0
        self.pairs = (
            list(pairs) if pairs is not None else system.deployment.pairs()
        )
        self.sample_rate = float(sample_rate)
        self.min_reads_per_antenna = int(min_reads_per_antenna)
        self.candidate_count = candidate_count
        self.retain_reports = retain_reports
        # Fail fast on bad knobs (the engine re-validates at begin(), but
        # that is mid-stream — long after a SessionManager loop started).
        if prune_margin is not None and not float(prune_margin) > 0:
            raise ValueError("prune_margin must be positive")
        if int(prune_burn_in) < 1:
            raise ValueError("prune_burn_in must be at least 1")
        self.prune_margin = prune_margin
        self.prune_burn_in = prune_burn_in
        self.resampler = StreamResampler(
            self.pairs,
            sample_rate=self.sample_rate,
            min_reads_per_antenna=self.min_reads_per_antenna,
            out_of_order=out_of_order,
        )
        self.state = SessionState.WARMING
        self.candidates: list[PositionCandidate] = []
        self.points: list[TrajectoryPoint] = []
        self.result: ReconstructionResult | None = None
        self.report_count = 0
        # Resampler drop counters, stashed at release() so the stats a
        # SessionManager aggregates survive the buffers being freed.
        self._released_drop_counts: tuple[int, int] = (0, 0)
        self._reports: list[PhaseReport] = []
        self._trace_state: TraceState | None = None
        self._running_votes: np.ndarray | None = None
        self._times: list[float] = []
        self._series_mode = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_tracking(self) -> bool:
        return self.state is SessionState.TRACKING

    @property
    def point_count(self) -> int:
        return len(self.points)

    @property
    def dropped_reports(self) -> int:
        """Reports the resampler discarded (``"drop"`` policy), total.

        Still readable after :meth:`release` freed the resampler.
        """
        if self.resampler is not None:
            return self.resampler.dropped_reports
        return self._released_drop_counts[0]

    @property
    def dropped_nonfinite(self) -> int:
        """The non-finite-phase subset of :attr:`dropped_reports`."""
        if self.resampler is not None:
            return self.resampler.dropped_nonfinite
        return self._released_drop_counts[1]

    def latest_point(self) -> TrajectoryPoint | None:
        return self.points[-1] if self.points else None

    # ------------------------------------------------------------------
    # Streaming ingest
    # ------------------------------------------------------------------
    def ingest(self, report: PhaseReport) -> list[TrajectoryPoint]:
        """Fold one phase report in; return any newly emitted points."""
        return [self._on_sample(sample) for sample in self._prepare(report)]

    def _prepare(self, report: PhaseReport) -> list[PairSample]:
        """Route one report into the resampler; return the finalized samples.

        The front half of :meth:`ingest` — validation, EPC pinning,
        incremental unwrap/interpolation, raw-report retention —
        *without* advancing the tracer. :meth:`ingest` steps each
        returned sample immediately;
        :meth:`repro.stream.manager.SessionManager.ingest_burst` instead
        collects the samples of many sessions and advances them in one
        merged engine call. Both paths produce bit-identical points
        because the step arithmetic is row-separable
        (:meth:`repro.core.engine.BatchedTracer.step_many`).
        """
        if self.state is SessionState.FINALIZED:
            raise ValueError("cannot ingest into a finalized session")
        if self._series_mode:
            raise ValueError(
                "this session consumes prebuilt series, not raw reports"
            )
        if self.epc_hex is None:
            self.epc_hex = report.epc_hex
        elif report.epc_hex != self.epc_hex:
            if self._epc_filtering:
                # An explicitly pinned session acts like the batch
                # builder's per-EPC filter: foreign tags just pass by.
                self.skipped_foreign_reports += 1
                return []
            raise ValueError(
                f"report for tag {report.epc_hex} routed to the session "
                f"tracking {self.epc_hex} (use a SessionManager to "
                "demultiplex tags)"
            )
        samples = self.resampler.ingest(report)  # may raise in strict mode
        self.report_count += 1
        # Retain even reports the resampler dropped as stale — the batch
        # builder would see them (the log is time-sorted), so a fallback
        # needs them to answer identically. Non-finite phases are the
        # exception: they are not data and would poison the fallback.
        if self.retain_reports and math.isfinite(report.phase):
            self._reports.append(report)
        return samples

    def extend(self, reports) -> list[TrajectoryPoint]:
        """Ingest an iterable of reports; return all emitted points."""
        emitted: list[TrajectoryPoint] = []
        for report in reports:
            emitted.extend(self.ingest(report))
        return emitted

    # ------------------------------------------------------------------
    # Prebuilt-series ingest (the batch facade's path)
    # ------------------------------------------------------------------
    def ingest_series(self, series: list[PairSeries]) -> list[TrajectoryPoint]:
        """Stream already-resampled pair series through the session.

        This is how the batch facade routes through the streaming core:
        each timeline instant of the prebuilt series is fed to the same
        incremental positioner/tracer machinery a live stream drives.
        The session must be fresh (no raw reports ingested).
        """
        if self.state is not SessionState.WARMING or self.points:
            raise ValueError(
                "ingest_series needs a fresh session (nothing ingested yet)"
            )
        if not series:
            raise ValueError("no pair series given")
        length = len(series[0])
        if length == 0:
            raise ValueError("pair series are empty")
        if not all(len(entry) == length for entry in series):
            raise ValueError("pair series do not share a timeline")
        self._series_mode = True
        self.pairs = [entry.pair for entry in series]
        delta = np.stack([entry.delta_phi for entry in series])  # (P, T)
        times = series[0].times
        emitted: list[TrajectoryPoint] = []
        for index in range(length):
            sample = PairSample(
                index=index, time=float(times[index]), delta_phi=delta[:, index]
            )
            emitted.append(self._on_sample(sample))
        return emitted

    # ------------------------------------------------------------------
    # The incremental core
    # ------------------------------------------------------------------
    def _on_sample(self, sample: PairSample) -> TrajectoryPoint:
        """Advance the tracker by one timeline instant."""
        if self.state is SessionState.WARMING:
            self._warm_up(sample)
        positions, votes = self.system.tracer.step(
            self._trace_state, sample.delta_phi
        )
        return self._emit_point(sample, positions, votes)

    def _warm_up(self, sample: PairSample) -> None:
        """Warm-up instant: run the multi-resolution positioner on the
        first snapshot, lock lobes, seed every candidate — exactly the
        batch pipeline's front half."""
        snapshot = PhaseSnapshot(
            pairs=self.pairs,
            delta_phi=np.array(
                [wrap_to_pi(value) for value in sample.delta_phi]
            ),
            time=sample.time,
        )
        self.candidates = self.system.positioner.candidates(
            snapshot, self.candidate_count
        )
        if not self.candidates:
            raise ValueError("the positioner produced no candidates")
        starts = np.stack(
            [candidate.position for candidate in self.candidates]
        )
        self._trace_state = self.system.tracer.begin(
            self.pairs,
            sample.delta_phi,
            starts,
            prune_margin=self.prune_margin,
            prune_burn_in=self.prune_burn_in,
        )
        self._running_votes = self._trace_state.running
        self.state = SessionState.TRACKING

    def _emit_point(
        self, sample: PairSample, positions: np.ndarray, votes: np.ndarray
    ) -> TrajectoryPoint:
        """Fold one solved step (from :meth:`~repro.core.engine.BatchedTracer.step`
        or a merged ``step_many`` row) into the session's histories.

        The step returns rows for the candidates still active (all of
        them unless pruning is on). The emitted point is the best
        *active* candidate by running vote sum — a pruned candidate's
        frozen sum can drift above the leader's late in a long trace,
        but it has no live position to report (and finalize resumes it
        if it could actually win).
        """
        stepped = self._trace_state.active_history[-1]
        if stepped.size == self._running_votes.size:
            row = int(np.argmax(self._running_votes))
            best = row
        elif stepped.size == 1:
            row = 0
            best = int(stepped[0])
        else:
            row = int(np.argmax(self._running_votes[stepped]))
            best = int(stepped[row])
        point = TrajectoryPoint(
            index=sample.index,
            time=sample.time,
            position=positions[row].copy(),
            candidate_index=best,
            vote=float(votes[row]),
        )
        self._times.append(sample.time)
        self.points.append(point)
        return point

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def finalize(self) -> ReconstructionResult:
        """Drain the timeline tail and pick the winning trajectory.

        Returns the same :class:`ReconstructionResult` the batch
        pipeline computes on the equivalent finished log.
        """
        if self.state is SessionState.FINALIZED:
            assert self.result is not None
            return self.result
        if not self._series_mode:
            try:
                tail = self.resampler.drain()
            except ValueError as error:
                if "no overlapping observation window" not in str(error):
                    raise
                # E.g. stale bursts dropped under out_of_order="drop"
                # left the stream's per-antenna windows disjoint. The
                # batch builder over the retained (time-sorted) reports
                # handles exactly this shape, so answer like batch
                # instead of crashing. (Other ValueErrors are real bugs
                # and must surface.)
                return self._finalize_fallback()
            for sample in tail:
                self._on_sample(sample)
        if self.state is not SessionState.TRACKING:
            return self._finalize_fallback()
        traces = self.system.tracer.finish(self._trace_state)
        indices = self._trace_state.result_indices
        if indices is not None and len(indices) != len(self.candidates):
            # Pruning certified the missing candidates as losers; the
            # result pairs the surviving candidates with their traces
            # and records each row's original warm-up index, so live
            # TrajectoryPoint.candidate_index values stay resolvable.
            candidates = [self.candidates[index] for index in indices]
            candidate_indices = list(indices)
        else:
            candidates = self.candidates
            candidate_indices = None
        chosen = int(np.argmax([trace.total_vote for trace in traces]))
        self.result = ReconstructionResult(
            times=np.asarray(self._times, dtype=float),
            chosen_index=chosen,
            candidates=candidates,
            traces=traces,
            candidate_indices=candidate_indices,
        )
        self.state = SessionState.FINALIZED
        return self.result

    def release(self) -> None:
        """Free the tracking buffers of a finalized session.

        :attr:`result`, :attr:`points` and :attr:`candidates` stay
        available; the resampler's per-antenna history, the engine's
        incremental trace state and the retained raw reports exist only
        to *compute* the result and are dropped. A long-lived
        :class:`~repro.stream.manager.SessionManager` with a
        ``retain_results`` cap calls this as sessions close so a
        day-long stream's finalized tags stop holding per-report
        memory. Idempotent; ingesting into a released session raises
        exactly like any finalized session.
        """
        if self.state is not SessionState.FINALIZED:
            raise ValueError("release() needs a finalized session")
        if self.resampler is not None:
            self._released_drop_counts = (
                self.resampler.dropped_reports,
                self.resampler.dropped_nonfinite,
            )
        self._reports = []
        self._trace_state = None
        self._running_votes = None
        self.resampler = None

    def _finalize_fallback(self) -> ReconstructionResult:
        """Degenerate stream: defer to the batch builder over raw reports.

        Streams whose timeline never started (dead antenna, too few
        reads) are exactly the inputs the batch path handles by dropping
        pairs — replaying the retained reports through it keeps the
        streaming API's answers identical to batch on every input.
        """
        if not self.retain_reports:
            raise ValueError(
                "stream never warmed up and retain_reports=False left "
                "nothing to fall back on"
            )
        if not self._reports:
            raise ValueError("cannot finalize an empty session")
        log = MeasurementLog(list(self._reports))
        series = build_pair_series(
            log,
            self.system.deployment,
            epc_hex=self.epc_hex,
            pairs=self.pairs,
            sample_rate=self.sample_rate,
            min_reads_per_antenna=self.min_reads_per_antenna,
        )
        fallback = TrackingSession(
            self.system,
            candidate_count=self.candidate_count,
            prune_margin=self.prune_margin,
            prune_burn_in=self.prune_burn_in,
        )
        fallback.ingest_series(series)
        self.points = fallback.points
        self.candidates = fallback.candidates
        self.result = fallback.finalize()
        # Adopt the fallback's timeline too, so this session's internal
        # time list agrees with result.times (the invariant every
        # non-degenerate finalize upholds).
        self._times = list(fallback._times)
        self.state = SessionState.FINALIZED
        return self.result
