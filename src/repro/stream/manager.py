"""Multi-tag session management: route reports by EPC, emit lifecycle events.

The paper's multi-user story (section 2: every tag carries a unique EPC,
so many users can share one virtual touch screen) becomes first-class
here: a :class:`SessionManager` owns one
:class:`~repro.stream.session.TrackingSession` per tag, routes each
incoming :class:`~repro.rfid.reader.PhaseReport` to its tag's session,
and surfaces the session lifecycle as events/callbacks::

    manager = SessionManager(system)
    manager.on_session_started = lambda e: print("tag", e.epc_hex)
    manager.on_point = lambda e: ui.draw(e.point.position)
    for report in reader_loop():
        manager.ingest(report)
    results = manager.finalize_all()   # {epc_hex: ReconstructionResult}

:meth:`SessionManager.replay` drives a recorded JSONL phase log through
the manager by streaming the *file* lazily
(:func:`repro.io.logs.iter_phase_log`) with bounded per-report work —
the offline test harness for the streaming stack and the migration path
for existing recorded sessions. (The sessions themselves still
accumulate per-antenna and per-step history for ``finalize()``, plus the
raw reports unless constructed with ``retain_reports=False``; a
``retain_results`` cap makes each session release those buffers the
moment it finalizes and sheds the oldest finalized sessions entirely,
so even an unbounded replay holds bounded memory.)

For always-on deployments the manager also bounds its own state: an
``idle_timeout`` auto-finalizes (``EVICTED`` + ``FINALIZED`` events) any
tag that stops replying — judged by report time, so replays of recorded
logs evict at the same points a live run would — and an optional
``max_sessions`` cap evicts the longest-idle open session to make room
for a newly seen EPC. Reports for an evicted tag are counted as
stragglers, like reports for an explicitly finalized one.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.pipeline import ReconstructionResult, RFIDrawSystem
from repro.stream.config import SessionConfig, fold_legacy_kwargs
from repro.rfid.reader import PhaseReport
from repro.stream.session import (
    SessionState,
    TrackingSession,
    TrajectoryPoint,
)

__all__ = [
    "ManagerStats",
    "ReplayResult",
    "SessionEventType",
    "SessionEvent",
    "SessionStarted",
    "PointEmitted",
    "SessionFinalized",
    "SessionEvicted",
    "SessionManager",
]


class SessionEventType(enum.Enum):
    """What happened to a per-tag session."""

    STARTED = "started"
    POINT = "point"
    FINALIZED = "finalized"
    EVICTED = "evicted"


@dataclass(frozen=True)
class SessionEvent:
    """One lifecycle event of one tag's session.

    Every event the manager fires is one of the four frozen subclasses
    below — :class:`SessionStarted`, :class:`PointEmitted`,
    :class:`SessionFinalized`, :class:`SessionEvicted` — so consumers
    may dispatch on ``isinstance`` instead of :attr:`type`; the
    :attr:`type` tag stays for existing code and for wire-format
    symmetry. The same union flows through ``SessionManager`` callbacks,
    :meth:`SessionManager.replay`, and the sharded
    :class:`repro.serve.TrackingService`'s merged event stream
    (there in :meth:`detached` form, since sessions live in the worker
    process).

    Attributes:
        type: which lifecycle edge fired.
        epc_hex: the tag.
        session: the session the event belongs to (``None`` on events
            shipped across a process boundary — see :meth:`detached`).
        point: the emitted point (``POINT`` events only).
        result: the final reconstruction (``FINALIZED`` and ``EVICTED``
            events; ``None`` on an ``EVICTED`` event whose finalize
            failed — the error is then in ``SessionManager.failures``).
        recognition: the classified word for the finalized trajectory
            (``FINALIZED`` events of a manager constructed with a
            ``recognizer``) — a
            :class:`repro.lexicon.recognizer.RecognitionResult`.
    """

    type: SessionEventType
    epc_hex: str
    session: TrackingSession | None
    point: TrajectoryPoint | None = None
    result: ReconstructionResult | None = None
    recognition: object | None = None

    def detached(self) -> "SessionEvent":
        """A copy without the live session reference.

        The wire form: points, results and recognitions pickle cleanly
        across a process boundary, the session object (resampler
        buffers, trace state, a reference to the whole system) does not
        belong on one.
        """
        if type(self) is SessionEvent:
            return dataclasses.replace(self, session=None)
        return type(self)(
            epc_hex=self.epc_hex,
            session=None,
            point=self.point,
            result=self.result,
            recognition=self.recognition,
        )


class _TypedSessionEvent(SessionEvent):
    """Shared constructor for the typed subclasses: the lifecycle tag is
    fixed per class, so callers never repeat it."""

    _TYPE: SessionEventType

    def __init__(
        self,
        epc_hex: str,
        session: TrackingSession | None,
        point: TrajectoryPoint | None = None,
        result: ReconstructionResult | None = None,
        recognition: object | None = None,
    ) -> None:
        super().__init__(
            self._TYPE, epc_hex, session, point, result, recognition
        )


class SessionStarted(_TypedSessionEvent):
    """A newly seen EPC opened a session."""

    _TYPE = SessionEventType.STARTED


class PointEmitted(_TypedSessionEvent):
    """A session emitted one live :class:`TrajectoryPoint`."""

    _TYPE = SessionEventType.POINT


class SessionFinalized(_TypedSessionEvent):
    """A session closed with a :class:`ReconstructionResult`."""

    _TYPE = SessionEventType.FINALIZED


class SessionEvicted(_TypedSessionEvent):
    """The eviction policy closed a session (after its ``FINALIZED``
    event when the finalize succeeded; ``result=None`` when it failed)."""

    _TYPE = SessionEventType.EVICTED


@dataclass(frozen=True)
class ManagerStats:
    """One structured snapshot of a manager's health counters.

    Until this existed the counters lived in scattered attributes
    (``stragglers`` here, ``dropped_reports`` per session's resampler,
    skip counts nowhere) — :meth:`SessionManager.stats` gathers them so
    monitoring, the replay driver and the fault testbed read one value.

    Counter totals include sessions already shed under a
    ``retain_results`` cap (the manager accumulates their tallies before
    dropping them), so a bounded manager still reports unbounded-stream
    truth.

    Attributes:
        open_sessions: sessions still ingesting.
        finalized_sessions: sessions closed with a result (shed included).
        failed_sessions: sessions whose finalize failed (ghost EPCs).
        evicted_sessions: sessions closed by the eviction policy, ever
            (unlike ``evicted_epcs``, never truncated by the cap).
        shed_sessions: closed sessions dropped under ``retain_results``.
        stragglers: reports for already-closed tags, dropped.
        ingested_reports: every report handed to :meth:`ingest`.
        dropped_reports: reports the resamplers discarded under the
            ``"drop"`` policy (stale arrivals + non-finite phases).
        dropped_nonfinite: the non-finite subset of ``dropped_reports``.
        skipped_foreign_reports: reports EPC-filtered by pinned sessions.
        skipped_log_lines: malformed JSONL lines skipped by
            non-strict :meth:`replay` calls.
        injected: external fault counters attached via
            :meth:`SessionManager.note_injected` (the testbed's
            fault-injection tallies); empty for live streams.
        classified: finalized trajectories the manager's ``recognizer``
            classified successfully.
        recognition_errors: finalized trajectories whose recognition
            raised (the result itself is unaffected).
        dtw_evals: total completed DTW template evaluations across all
            classifications (early-abandoned templates excluded).
        shortlist_hist: ``{str(shortlist_size): count}`` histogram of
            per-classification shortlist sizes — see
            :meth:`shortlist_percentiles`. A dict keyed by stringified
            size so it merges and serialises like :attr:`injected`.
    """

    open_sessions: int
    finalized_sessions: int
    failed_sessions: int
    evicted_sessions: int
    shed_sessions: int
    stragglers: int
    ingested_reports: int
    dropped_reports: int
    dropped_nonfinite: int
    skipped_foreign_reports: int
    skipped_log_lines: int
    injected: dict[str, int] = field(default_factory=dict)
    classified: int = 0
    recognition_errors: int = 0
    dtw_evals: int = 0
    shortlist_hist: dict[str, int] = field(default_factory=dict)

    #: Dict-valued counters that merge per key over the union of keys.
    _DICT_COUNTERS = ("injected", "shortlist_hist")

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-ready, e.g. for score tables)."""
        return dataclasses.asdict(self)

    def shortlist_percentiles(
        self, percentiles: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        """Shortlist-size percentiles from :attr:`shortlist_hist`.

        Returns ``{"p50": ..., ...}``; empty when nothing was
        classified. Exact percentiles of the recorded distribution —
        the histogram keeps every distinct size, it merely stores them
        sparsely.
        """
        if not self.shortlist_hist:
            return {}
        sizes = np.array(sorted(int(k) for k in self.shortlist_hist))
        counts = np.array(
            [self.shortlist_hist[str(s)] for s in sizes], dtype=float
        )
        cumulative = np.cumsum(counts) / counts.sum()
        return {
            f"p{q}": float(sizes[int(np.searchsorted(cumulative, q / 100.0))])
            for q in percentiles
        }

    def merge(self, other: "ManagerStats") -> "ManagerStats":
        """Sum two snapshots counter by counter.

        Built for sharded aggregation
        (:class:`repro.serve.TrackingService` merges one snapshot per
        worker): every integer counter adds, and the :attr:`injected`
        fault tallies add *per key over the union of keys* — a fault
        type recorded by only one shard must survive the merge instead
        of being silently dropped.
        """
        if not isinstance(other, ManagerStats):
            return NotImplemented
        counters = {}
        for spec in dataclasses.fields(ManagerStats):
            if spec.name in self._DICT_COUNTERS:
                continue
            counters[spec.name] = getattr(self, spec.name) + getattr(
                other, spec.name
            )
        for name in self._DICT_COUNTERS:
            merged = dict(getattr(self, name))
            for key, value in getattr(other, name).items():
                merged[key] = merged.get(key, 0) + value
            counters[name] = merged
        return ManagerStats(**counters)

    __add__ = merge


class ReplayResult(dict):
    """:meth:`SessionManager.replay`'s return value.

    Still the plain ``{epc_hex: ReconstructionResult}`` mapping it
    always was (every existing caller keeps working), plus the
    end-of-replay :class:`ManagerStats` snapshot as :attr:`stats` — so
    a replay reports how dirty its log was alongside what it answered.
    """

    def __init__(self, results: dict, stats: ManagerStats) -> None:
        super().__init__(results)
        self.stats = stats


class SessionManager:
    """Routes a merged multi-tag report stream to per-tag sessions.

    Args:
        system: the pipeline facade shared by every session (one
            deployment/positioner/tracer serves all tags).
        session_factory: builds the session for a newly seen EPC;
            defaults to ``TrackingSession(system, epc_hex=epc,
            **session_kwargs)``. Use it to give different tags different
            tunables.
        idle_timeout: eviction policy, keyed on *report* time (not wall
            clock, so recorded replays behave like live streams): a tag
            whose last report is more than this many seconds behind the
            newest report seen by the manager is auto-finalized — its
            ``FINALIZED`` event fires, then an ``EVICTED`` event. A
            day-long merged stream therefore holds bounded open-session
            state no matter how many tags come and go. ``None``
            (default) keeps sessions open until finalized explicitly.
        max_sessions: optional hard cap on concurrently *open* sessions;
            when a new EPC would exceed it, the open session with the
            oldest last report is evicted first. ``None`` = unbounded.
        retain_results: optional cap on *closed* session history.
            ``None`` (default) keeps every session forever — fine for a
            gesture, unbounded on a day-long stream. With a cap, each
            session releases its resampler/trace/report buffers the
            moment it finalizes (:meth:`TrackingSession.release`; its
            result and points stay readable), and once more than
            ``retain_results`` closed sessions accumulate the oldest
            are shed from the manager entirely — ghost sessions whose
            eviction finalize failed included, along with their
            :attr:`failures`/:attr:`evicted_epcs` bookkeeping, so the
            manager's state stays bounded no matter how many tags (or
            noise EPCs) a stream carries. Shed results must have been
            consumed through the ``FINALIZED`` event or the
            :meth:`replay` return value (which taps that event);
            :meth:`finalize_all` only covers sessions still held. A
            shed tag that starts replying again begins a *fresh*
            session (a new gesture) rather than counting as a
            straggler.
        **session_kwargs: forwarded to the default factory.

    Attributes:
        on_session_started / on_point / on_session_finalized /
        on_session_evicted: optional callbacks, each receiving a
            :class:`SessionEvent`.
        evicted_epcs: EPCs auto-finalized by the eviction policy, in
            eviction order. A report arriving for an evicted tag counts
            as a straggler (see :meth:`ingest`) — even if its eviction
            finalize failed, so one dead ghost cannot make every later
            report retry a doomed finalize.
    """

    def __init__(
        self,
        system: RFIDrawSystem,
        session_factory: Callable[[str], TrackingSession] | None = None,
        config: SessionConfig | None = None,
        idle_timeout: float | None = None,
        max_sessions: int | None = None,
        retain_results: int | None = None,
        recognizer=None,
        **session_kwargs,
    ) -> None:
        self.system = system
        # Optional word recogniser (e.g. ``WordRecognizer`` or
        # ``repro.lexicon.LexiconRecognizer``): every successful
        # finalize classifies the trajectory, attaches the
        # ``RecognitionResult`` to the FINALIZED event and tallies the
        # work in stats(). Recognition failures never fail the
        # finalize — the trajectory is the product, the word a bonus.
        self.recognizer = recognizer
        self.recognitions: dict[str, object] = {}
        self.classified = 0
        self.recognition_errors = 0
        self.dtw_evals = 0
        self.shortlist_hist: dict[str, int] = {}
        legacy = dict(session_kwargs)
        for name, value in (
            ("idle_timeout", idle_timeout),
            ("max_sessions", max_sessions),
            ("retain_results", retain_results),
        ):
            if value is not None:
                legacy[name] = value
        config, passthrough = fold_legacy_kwargs(
            config, legacy, "SessionManager"
        )
        if session_factory is None:
            def session_factory(epc_hex: str) -> TrackingSession:
                return TrackingSession(
                    system,
                    epc_hex=epc_hex,
                    **self.config.session_kwargs(),
                    **passthrough,
                )
        elif session_kwargs or config.session_kwargs() != (
            SessionConfig().session_kwargs()
        ):
            raise ValueError(
                "pass tunables through the custom session_factory, "
                "not alongside it"
            )
        self.config = config
        self.session_factory = session_factory
        self.idle_timeout = config.idle_timeout
        self.max_sessions = config.max_sessions
        self.retain_results = config.retain_results
        # Closed EPCs (finalized, or ghost-evicted with a failed
        # finalize) in close order — the shed queue when a
        # retain_results cap is set.
        self._closed_order: deque[str] = deque()
        self.sessions: dict[str, TrackingSession] = {}
        self.failures: dict[str, Exception] = {}
        self.stragglers = 0
        self.ingested_reports = 0
        self.skipped_log_lines = 0
        self.injected_counters: dict[str, int] = {}
        self.last_report_time: dict[str, float] = {}
        self.evicted_epcs: list[str] = []
        self.evicted_count = 0
        # Accumulated tallies of sessions shed under retain_results, so
        # stats() stays truthful after their sessions are gone.
        self._shed_finalized = 0
        self._shed_failed = 0
        self._shed_dropped = 0
        self._shed_nonfinite = 0
        self._shed_foreign = 0
        self._closed: set[str] = set()
        # Insertion-ordered registry of sessions believed open, purged
        # lazily — the per-report idle sweep walks this, not the full
        # (ever-growing) session map.
        self._open: dict[str, None] = {}
        self._frontier = float("-inf")
        self.on_session_started: Callable[[SessionEvent], None] | None = None
        self.on_point: Callable[[SessionEvent], None] | None = None
        self.on_session_finalized: Callable[[SessionEvent], None] | None = None
        self.on_session_evicted: Callable[[SessionEvent], None] | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sessions)

    def epcs(self) -> list[str]:
        """EPCs with a session, in first-seen order."""
        return list(self.sessions)

    def session_for(self, epc_hex: str) -> TrackingSession:
        """The session of a tag, creating (and announcing) it if new."""
        session = self.sessions.get(epc_hex)
        if session is None:
            session = self.session_factory(epc_hex)
            self.sessions[epc_hex] = session
            self._open[epc_hex] = None
            self._fire(
                self.on_session_started, SessionStarted(epc_hex, session)
            )
        return session

    def ingest(self, report: PhaseReport) -> list[SessionEvent]:
        """Route one report; return the events it produced.

        A straggler report for a tag whose session was already finalized
        or evicted (the tag keeps replying after its gesture was closed
        out) is dropped and counted in :attr:`stragglers` rather than
        crashing the shared reader loop.

        With an eviction policy configured, each report first advances
        the report-time frontier and sweeps idle sessions; any
        ``EVICTED`` events that fires (possibly for *other* tags than
        the report's, and for the report's own tag if it returns after
        idling out) are included in the returned list ahead of the
        report's own ``POINT`` events.
        """
        events: list[SessionEvent] = []
        self.ingested_reports += 1
        if self.idle_timeout is not None and report.time > self._frontier:
            # Only an advancing frontier can make a session newly stale,
            # so the sweep is skipped for same-or-older timestamps.
            self._frontier = report.time
            events.extend(self._evict_idle())
        epc = report.epc_hex
        session = self.sessions.get(epc)
        if session is None:
            if self.max_sessions is not None:
                events.extend(self._evict_for_capacity())
            session = self.session_for(epc)
        if epc in self._closed or session.result is not None:
            self.stragglers += 1
            return events
        # max(): reports from different antennas may interleave slightly
        # non-monotonically (legal per-antenna), and a tag's idle clock
        # must never move backwards because of it.
        previous = self.last_report_time.get(epc)
        if previous is None or report.time > previous:
            self.last_report_time[epc] = report.time
        for point in session.ingest(report):
            event = PointEmitted(epc, session, point=point)
            self._fire(self.on_point, event)
            events.append(event)
        return events

    def ingest_burst(self, reports: Iterable[PhaseReport]) -> list[SessionEvent]:
        """Route a burst of reports, advancing all tags in merged engine calls.

        Semantically :meth:`ingest` in a loop — same routing, straggler
        accounting, frontier sweep and eviction per report, and
        **bit-identical per-tag points and results** — but the tracer
        work is batched: the timeline samples each report unlocks are
        collected per session, then advanced in aligned rounds where
        every warm session's next sample joins a single
        ``(Σtags·C, 2)`` :meth:`repro.core.engine.BatchedTracer.step_many`
        solve (grouped by pair geometry, so heterogeneous session
        factories still work). With many concurrently warm tags this
        amortizes the per-step numpy dispatch across the whole fleet —
        the hot loop of the sharded :class:`repro.serve.TrackingService`.

        Ordering contract: per tag, ``POINT`` events keep exactly the
        order :meth:`ingest` would emit; *across* tags the burst emits
        eviction events at their routing positions first, then points
        in round-robin (sample-round) order rather than report order.
        A session evicted mid-burst has its collected samples applied
        (sequentially) before its ``FINALIZED``/``EVICTED`` events fire,
        so no point is lost or reordered against its own lifecycle.

        Returns:
            The produced events (``EVICTED`` + ``POINT``; ``STARTED``
            and ``FINALIZED`` fire through their callbacks, as in
            :meth:`ingest`).
        """
        events: list[SessionEvent] = []
        pending: dict[str, list] = {}

        def flush(epc: str) -> None:
            # A tag leaving the burst early (evicted to honor policy)
            # applies its collected samples one by one — the sequential
            # path, bit-identical to the merged one — so its history is
            # complete before finalize.
            samples = pending.pop(epc, None)
            if not samples:
                return
            session = self.sessions[epc]
            for sample in samples:
                point = session._on_sample(sample)
                event = PointEmitted(epc, session, point=point)
                self._fire(self.on_point, event)
                events.append(event)

        try:
            for report in reports:
                self.ingested_reports += 1
                if (
                    self.idle_timeout is not None
                    and report.time > self._frontier
                ):
                    self._frontier = report.time
                    cutoff = self._frontier - self.idle_timeout
                    stale = [
                        epc
                        for epc in self.open_epcs()
                        if epc in self.last_report_time
                        and self.last_report_time[epc] < cutoff
                    ]
                    for epc in stale:
                        flush(epc)
                        events.append(self.evict(epc))
                epc = report.epc_hex
                session = self.sessions.get(epc)
                if session is None:
                    if self.max_sessions is not None:
                        while True:
                            open_epcs = self.open_epcs()
                            if len(open_epcs) < self.max_sessions:
                                break
                            oldest = min(
                                open_epcs,
                                key=lambda e: self.last_report_time.get(
                                    e, float("-inf")
                                ),
                            )
                            flush(oldest)
                            events.append(self.evict(oldest))
                    session = self.session_for(epc)
                if epc in self._closed or session.result is not None:
                    self.stragglers += 1
                    continue
                previous = self.last_report_time.get(epc)
                if previous is None or report.time > previous:
                    self.last_report_time[epc] = report.time
                samples = session._prepare(report)
                if samples:
                    pending.setdefault(epc, []).extend(samples)
        finally:
            # Advance whatever was collected even if routing raised
            # (strict out-of-order policy): a sample the resampler
            # emitted must reach the tracer or the session would be
            # permanently out of sync — mirroring how the sequential
            # path fully applies every report before the failing one.
            self._advance_pending(pending, events)
        return events

    def _advance_pending(
        self, pending: dict[str, list], events: list[SessionEvent]
    ) -> None:
        """Advance per-session sample queues in merged aligned rounds."""
        round_index = 0
        while pending:
            batch = []
            for epc in list(pending):
                samples = pending[epc]
                if round_index < len(samples):
                    batch.append((epc, self.sessions[epc], samples[round_index]))
                else:
                    del pending[epc]
            if not batch:
                break
            # Group mergeable trace states (same tracer, same stacked
            # pair geometry and scale); warm-up instants run the
            # positioner per session first, exactly like sequential
            # ingest, which also gives the state its merge key.
            groups: dict[tuple, tuple] = {}
            for item in batch:
                _, session, sample = item
                if session.state is SessionState.WARMING:
                    session._warm_up(sample)
                tracer = session.system.tracer
                key = (id(tracer), session._trace_state.merge_key)
                groups.setdefault(key, (tracer, []))[1].append(item)
            for tracer, items in groups.values():
                outputs = tracer.step_many(
                    [
                        (session._trace_state, sample.delta_phi)
                        for _, session, sample in items
                    ]
                )
                for (epc, session, sample), (positions, votes) in zip(
                    items, outputs
                ):
                    point = session._emit_point(sample, positions, votes)
                    event = PointEmitted(epc, session, point=point)
                    self._fire(self.on_point, event)
                    events.append(event)
            round_index += 1

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def open_epcs(self) -> list[str]:
        """EPCs whose sessions are still open (not finalized or evicted).

        Walks the open-session registry, lazily dropping sessions that
        were closed out of band (e.g. ``session.finalize()`` called
        directly) — amortized cost proportional to the *open* session
        count, not every EPC the stream ever carried.
        """
        open_list = []
        for epc in list(self._open):
            if epc in self._closed or self.sessions[epc].result is not None:
                del self._open[epc]
            else:
                open_list.append(epc)
        return open_list

    def evict(self, epc_hex: str) -> SessionEvent:
        """Force-evict one tag: finalize its session and close it for good.

        Fires the ``FINALIZED`` event (when finalize succeeds) followed
        by the ``EVICTED`` event. A finalize failure (e.g. a ghost EPC
        that never warmed up) is recorded in :attr:`failures` instead of
        propagating — eviction runs inside the shared ingest loop, which
        must survive any single tag — and the session stays closed
        either way, so later reports for it count as stragglers.
        """
        session = self.sessions[epc_hex]
        self._closed.add(epc_hex)
        self._open.pop(epc_hex, None)
        self.evicted_epcs.append(epc_hex)
        self.evicted_count += 1
        result = None
        try:
            result = self.finalize(epc_hex)
        except Exception as error:
            self.failures[epc_hex] = error
            if self.retain_results is not None:
                # The ghost is closed for good (its reports will count
                # as stragglers), so it joins the shed queue like a
                # finalized session — one dead EPC per noise burst must
                # not grow the manager forever.
                self._closed_order.append(epc_hex)
                self._shed_closed()
        event = SessionEvicted(epc_hex, session, result=result)
        self._fire(self.on_session_evicted, event)
        return event

    def _evict_idle(self) -> list[SessionEvent]:
        """Evict open sessions idle past the report-time frontier."""
        cutoff = self._frontier - self.idle_timeout
        stale = [
            epc
            for epc in self.open_epcs()
            if epc in self.last_report_time
            and self.last_report_time[epc] < cutoff
        ]
        return [self.evict(epc) for epc in stale]

    def _evict_for_capacity(self) -> list[SessionEvent]:
        """Make room for a new session under the ``max_sessions`` cap."""
        events: list[SessionEvent] = []
        while True:
            open_epcs = self.open_epcs()
            if len(open_epcs) < self.max_sessions:
                return events
            oldest = min(
                open_epcs,
                key=lambda epc: self.last_report_time.get(epc, float("-inf")),
            )
            events.append(self.evict(oldest))

    def extend(self, reports: Iterable[PhaseReport]) -> list[SessionEvent]:
        """Route an iterable of reports; return all produced events."""
        events: list[SessionEvent] = []
        for report in reports:
            events.extend(self.ingest(report))
        return events

    def finalize(self, epc_hex: str) -> ReconstructionResult:
        """Finalize one tag's session and fire its lifecycle event.

        A session whose earlier finalize failed (ghost EPC) may succeed
        once more reports arrive; success clears its stale
        :attr:`failures` entry. With a ``retain_results`` cap, the
        session's tracking buffers are released after the event fires
        and the oldest finalized sessions beyond the cap are shed.
        """
        session = self.sessions[epc_hex]
        already = session.result is not None
        result = session.finalize()
        self.failures.pop(epc_hex, None)
        self._open.pop(epc_hex, None)
        if not already:
            recognition = None
            if self.recognizer is not None:
                recognition = self._recognize(epc_hex, result)
            self._fire(
                self.on_session_finalized,
                SessionFinalized(
                    epc_hex, session, result=result, recognition=recognition
                ),
            )
            if self.retain_results is not None:
                session.release()
                # Membership check (O(cap), the deque never exceeds it):
                # a ghost that joined the queue at eviction and later
                # finalizes for real must not occupy two slots.
                if epc_hex not in self._closed_order:
                    self._closed_order.append(epc_hex)
                self._shed_closed()
        return result

    def _recognize(self, epc_hex: str, result: ReconstructionResult):
        """Classify a finalized trajectory; tally the work, never raise."""
        try:
            if hasattr(self.recognizer, "recognize"):
                recognition = self.recognizer.recognize(result.trajectory)
            else:  # classify-only recogniser: no work counters to read
                from repro.lexicon.recognizer import RecognitionResult

                word = self.recognizer.classify(result.trajectory)
                recognition = RecognitionResult(
                    word=word,
                    distance=float("nan"),
                    shortlist_size=0,
                    dtw_evals=0,
                    candidates=(),
                )
        except Exception:
            self.recognition_errors += 1
            return None
        self.classified += 1
        self.dtw_evals += recognition.dtw_evals
        key = str(recognition.shortlist_size)
        self.shortlist_hist[key] = self.shortlist_hist.get(key, 0) + 1
        self.recognitions[epc_hex] = recognition
        return recognition

    def _shed_closed(self) -> None:
        """Drop the oldest closed sessions beyond the retention cap."""
        while len(self._closed_order) > self.retain_results:
            epc = self._closed_order.popleft()
            self.recognitions.pop(epc, None)
            session = self.sessions.pop(epc, None)
            if session is not None:
                # Fold the shed session's tallies into the accumulated
                # totals so stats() keeps reporting the whole stream.
                if session.result is not None:
                    self._shed_finalized += 1
                self._shed_dropped += session.dropped_reports
                self._shed_nonfinite += session.dropped_nonfinite
                self._shed_foreign += session.skipped_foreign_reports
            if epc in self.failures:
                self._shed_failed += 1
            self.last_report_time.pop(epc, None)
            self.failures.pop(epc, None)
            self._open.pop(epc, None)
            self._closed.discard(epc)
        # The eviction audit trail is bounded the same way: keep only
        # as much history as the retention cap allows.
        while len(self.evicted_epcs) > self.retain_results:
            self.evicted_epcs.pop(0)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def note_injected(self, counters: dict[str, int]) -> None:
        """Attach external fault-injection counters to :meth:`stats`.

        The fault layer perturbs the stream *before* the manager sees
        it, so the manager cannot count injections itself; the testbed
        runner records the injector tallies here so one snapshot carries
        both what was injected and how the stack absorbed it. Repeated
        calls accumulate per key.
        """
        for key, value in counters.items():
            self.injected_counters[key] = (
                self.injected_counters.get(key, 0) + int(value)
            )

    def stats(self) -> ManagerStats:
        """The current :class:`ManagerStats` snapshot."""
        finalized = self._shed_finalized
        dropped = self._shed_dropped
        nonfinite = self._shed_nonfinite
        foreign = self._shed_foreign
        open_sessions = 0
        for epc, session in self.sessions.items():
            if session.result is not None:
                finalized += 1
            elif epc not in self._closed and epc not in self.failures:
                # Still ingesting. Closed-but-resultless sessions (a
                # ghost whose finalize failed) are counted by
                # failed_sessions, not here.
                open_sessions += 1
            dropped += session.dropped_reports
            nonfinite += session.dropped_nonfinite
            foreign += session.skipped_foreign_reports
        return ManagerStats(
            open_sessions=open_sessions,
            finalized_sessions=finalized,
            failed_sessions=len(self.failures) + self._shed_failed,
            evicted_sessions=self.evicted_count,
            shed_sessions=self._shed_finalized + self._shed_failed,
            stragglers=self.stragglers,
            ingested_reports=self.ingested_reports,
            dropped_reports=dropped,
            dropped_nonfinite=nonfinite,
            skipped_foreign_reports=foreign,
            skipped_log_lines=self.skipped_log_lines,
            injected=dict(self.injected_counters),
            classified=self.classified,
            recognition_errors=self.recognition_errors,
            dtw_evals=self.dtw_evals,
            shortlist_hist=dict(self.shortlist_hist),
        )

    def finalize_all(
        self, raise_errors: bool = False
    ) -> dict[str, ReconstructionResult]:
        """Finalize every session; ``{epc_hex: result}`` in seen order.

        A session that cannot finalize — typically a ghost EPC from a
        misread burst, whose handful of reports never warm up — must not
        cost the other users their trajectories: by default its error is
        recorded in :attr:`failures` (keyed by EPC) and the remaining
        sessions still finalize. Pass ``raise_errors=True`` to propagate
        the first failure instead.

        Under a ``retain_results`` cap only the sessions the manager
        still holds are finalized and returned — results of sessions
        shed earlier must have been consumed through their
        ``FINALIZED`` events (or :meth:`replay`, which taps them).
        Shedding mid-call cannot lose a result that was not already
        delivered through its event.
        """
        results: dict[str, ReconstructionResult] = {}
        for epc in list(self.sessions):
            if epc not in self.sessions:
                continue  # shed by retain_results while finalizing others
            try:
                results[epc] = self.finalize(epc)
            except Exception as error:
                if raise_errors:
                    raise
                self.failures[epc] = error
        return results

    # ------------------------------------------------------------------
    def replay(
        self, path, finalize: bool = True, strict: bool = True
    ) -> ReplayResult:
        """Stream a recorded JSONL phase log through the manager.

        Reads the log lazily (:func:`repro.io.logs.iter_phase_log`) —
        constant memory for the file itself and bounded work per report.
        The per-tag sessions do retain tracking history (and, by
        default, the raw reports) until finalized; build them with
        ``retain_reports=False`` to shed the largest share of that, and
        with ``retain_results`` to bound the closed-session history on
        long logs.

        Args:
            path: the JSONL phase log.
            finalize: finalize every session at end-of-log and return
                the results; pass ``False`` to keep sessions open (e.g.
                to replay several log segments back to back).
            strict: raise on a malformed log line (default). With
                ``strict=False`` malformed/truncated lines are skipped
                and counted into the stats snapshot's
                ``skipped_log_lines`` — a half-written recording from a
                crashed capture replays what it can.

        Returns:
            A :class:`ReplayResult`: the ``{epc_hex:
            ReconstructionResult}`` mapping (empty when
            ``finalize=False``) with the end-of-replay
            :class:`ManagerStats` snapshot attached as ``.stats``.
            Complete even under a ``retain_results`` cap: sessions
            finalized mid-replay (an eviction policy closing gestures
            as the log advances) are captured through their
            ``FINALIZED`` events at the moment they close, before
            shedding can drop them — only the *sessions* are shed, the
            returned results are the caller's.
        """
        from repro.io.logs import LogReadStats, iter_phase_log

        collected: dict[str, ReconstructionResult] = {}
        user_callback = self.on_session_finalized
        read_stats = LogReadStats()

        def tap(event: SessionEvent) -> None:
            if finalize and event.result is not None:
                collected[event.epc_hex] = event.result
            if user_callback is not None:
                user_callback(event)

        self.on_session_finalized = tap
        try:
            for report in iter_phase_log(path, strict=strict, stats=read_stats):
                self.ingest(report)
            if finalize:
                collected.update(self.finalize_all())
        finally:
            self.on_session_finalized = user_callback
            self.skipped_log_lines += read_stats.skipped_lines
        return ReplayResult(collected if finalize else {}, self.stats())

    @staticmethod
    def _fire(
        callback: Callable[[SessionEvent], None] | None, event: SessionEvent
    ) -> None:
        if callback is not None:
            callback(event)
