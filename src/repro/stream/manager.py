"""Multi-tag session management: route reports by EPC, emit lifecycle events.

The paper's multi-user story (section 2: every tag carries a unique EPC,
so many users can share one virtual touch screen) becomes first-class
here: a :class:`SessionManager` owns one
:class:`~repro.stream.session.TrackingSession` per tag, routes each
incoming :class:`~repro.rfid.reader.PhaseReport` to its tag's session,
and surfaces the session lifecycle as events/callbacks::

    manager = SessionManager(system)
    manager.on_session_started = lambda e: print("tag", e.epc_hex)
    manager.on_point = lambda e: ui.draw(e.point.position)
    for report in reader_loop():
        manager.ingest(report)
    results = manager.finalize_all()   # {epc_hex: ReconstructionResult}

:meth:`SessionManager.replay` drives a recorded JSONL phase log through
the manager by streaming the *file* lazily
(:func:`repro.io.logs.iter_phase_log`) with bounded per-report work —
the offline test harness for the streaming stack and the migration path
for existing recorded sessions. (The sessions themselves still
accumulate per-antenna and per-step history for ``finalize()``, plus the
raw reports unless constructed with ``retain_reports=False``, so memory
grows with recording length even though the file is never slurped.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.pipeline import ReconstructionResult, RFIDrawSystem
from repro.rfid.reader import PhaseReport
from repro.stream.session import TrackingSession, TrajectoryPoint

__all__ = ["SessionEventType", "SessionEvent", "SessionManager"]


class SessionEventType(enum.Enum):
    """What happened to a per-tag session."""

    STARTED = "started"
    POINT = "point"
    FINALIZED = "finalized"


@dataclass(frozen=True)
class SessionEvent:
    """One lifecycle event of one tag's session.

    Attributes:
        type: which lifecycle edge fired.
        epc_hex: the tag.
        session: the session the event belongs to.
        point: the emitted point (``POINT`` events only).
        result: the final reconstruction (``FINALIZED`` events only).
    """

    type: SessionEventType
    epc_hex: str
    session: TrackingSession
    point: TrajectoryPoint | None = None
    result: ReconstructionResult | None = None


class SessionManager:
    """Routes a merged multi-tag report stream to per-tag sessions.

    Args:
        system: the pipeline facade shared by every session (one
            deployment/positioner/tracer serves all tags).
        session_factory: builds the session for a newly seen EPC;
            defaults to ``TrackingSession(system, epc_hex=epc,
            **session_kwargs)``. Use it to give different tags different
            tunables.
        **session_kwargs: forwarded to the default factory.

    Attributes:
        on_session_started / on_point / on_session_finalized: optional
            callbacks, each receiving a :class:`SessionEvent`.
    """

    def __init__(
        self,
        system: RFIDrawSystem,
        session_factory: Callable[[str], TrackingSession] | None = None,
        **session_kwargs,
    ) -> None:
        self.system = system
        if session_factory is None:
            def session_factory(epc_hex: str) -> TrackingSession:
                return TrackingSession(
                    system, epc_hex=epc_hex, **session_kwargs
                )
        elif session_kwargs:
            raise ValueError(
                "pass tunables through the custom session_factory, "
                "not alongside it"
            )
        self.session_factory = session_factory
        self.sessions: dict[str, TrackingSession] = {}
        self.failures: dict[str, Exception] = {}
        self.stragglers = 0
        self.on_session_started: Callable[[SessionEvent], None] | None = None
        self.on_point: Callable[[SessionEvent], None] | None = None
        self.on_session_finalized: Callable[[SessionEvent], None] | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sessions)

    def epcs(self) -> list[str]:
        """EPCs with a session, in first-seen order."""
        return list(self.sessions)

    def session_for(self, epc_hex: str) -> TrackingSession:
        """The session of a tag, creating (and announcing) it if new."""
        session = self.sessions.get(epc_hex)
        if session is None:
            session = self.session_factory(epc_hex)
            self.sessions[epc_hex] = session
            self._fire(
                self.on_session_started,
                SessionEvent(SessionEventType.STARTED, epc_hex, session),
            )
        return session

    def ingest(self, report: PhaseReport) -> list[SessionEvent]:
        """Route one report; return the events it produced.

        A straggler report for a tag whose session was already finalized
        (the tag keeps replying after its gesture was closed out) is
        dropped and counted in :attr:`stragglers` rather than crashing
        the shared reader loop.
        """
        session = self.session_for(report.epc_hex)
        if session.result is not None:
            self.stragglers += 1
            return []
        events = []
        for point in session.ingest(report):
            event = SessionEvent(
                SessionEventType.POINT, report.epc_hex, session, point=point
            )
            self._fire(self.on_point, event)
            events.append(event)
        return events

    def extend(self, reports: Iterable[PhaseReport]) -> list[SessionEvent]:
        """Route an iterable of reports; return all produced events."""
        events: list[SessionEvent] = []
        for report in reports:
            events.extend(self.ingest(report))
        return events

    def finalize(self, epc_hex: str) -> ReconstructionResult:
        """Finalize one tag's session and fire its lifecycle event."""
        session = self.sessions[epc_hex]
        already = session.result is not None
        result = session.finalize()
        if not already:
            self._fire(
                self.on_session_finalized,
                SessionEvent(
                    SessionEventType.FINALIZED, epc_hex, session, result=result
                ),
            )
        return result

    def finalize_all(
        self, raise_errors: bool = False
    ) -> dict[str, ReconstructionResult]:
        """Finalize every session; ``{epc_hex: result}`` in seen order.

        A session that cannot finalize — typically a ghost EPC from a
        misread burst, whose handful of reports never warm up — must not
        cost the other users their trajectories: by default its error is
        recorded in :attr:`failures` (keyed by EPC) and the remaining
        sessions still finalize. Pass ``raise_errors=True`` to propagate
        the first failure instead.
        """
        results: dict[str, ReconstructionResult] = {}
        for epc in self.sessions:
            try:
                results[epc] = self.finalize(epc)
            except Exception as error:
                if raise_errors:
                    raise
                self.failures[epc] = error
        return results

    # ------------------------------------------------------------------
    def replay(
        self, path, finalize: bool = True
    ) -> dict[str, ReconstructionResult]:
        """Stream a recorded JSONL phase log through the manager.

        Reads the log lazily (:func:`repro.io.logs.iter_phase_log`) —
        constant memory for the file itself and bounded work per report.
        The per-tag sessions do retain tracking history (and, by
        default, the raw reports) until finalized; build them with
        ``retain_reports=False`` to shed the largest share of that.

        Args:
            path: the JSONL phase log.
            finalize: finalize every session at end-of-log and return
                the results; pass ``False`` to keep sessions open (e.g.
                to replay several log segments back to back).

        Returns:
            ``{epc_hex: ReconstructionResult}`` (empty when
            ``finalize=False``).
        """
        from repro.io.logs import iter_phase_log

        for report in iter_phase_log(path):
            self.ingest(report)
        return self.finalize_all() if finalize else {}

    @staticmethod
    def _fire(
        callback: Callable[[SessionEvent], None] | None, event: SessionEvent
    ) -> None:
        if callback is not None:
            callback(event)
