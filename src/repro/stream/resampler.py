"""Incremental resampling: raw phase reports → per-pair Δφ instants.

This is the streaming counterpart of
:func:`repro.rfid.sampling.build_pair_series`. The batch function sees a
finished log and performs four passes (group per antenna, unwrap,
interpolate onto a common timeline, difference pairs); the
:class:`StreamResampler` maintains the same state *incrementally* so each
:class:`~repro.rfid.reader.PhaseReport` is folded in with O(1) amortised
work and timeline instants are emitted as soon as their value can no
longer change.

Equivalence with the batch path is exact, not approximate:

* **Unwrapping** replicates ``numpy.unwrap``'s per-sample recurrence
  (the correction of sample *n* depends only on samples *n−1* and *n*,
  accumulated in the same order), so the incremental unwrapped series is
  bit-identical to unwrapping the finished per-antenna series.
* **The timeline** is the batch timeline: ``start`` is the latest first
  read over the needed antennas, instants are ``start + j/rate`` with the
  same float operations, and the instant count tracks the batch
  ``floor((end − start)·rate) + 1`` as ``end`` (the earliest last read)
  grows.
* **Interpolation** evaluates ``numpy.interp`` on the two samples that
  bracket the instant — the same two samples the full-array call uses —
  and an instant is only emitted once every antenna has a read at or past
  it, i.e. once its bracketing samples are final.

An instant that batch processing would include but whose value is not yet
final (the trailing edge, plus the degenerate ``max(2, …)`` short-log
timeline) is emitted by :meth:`StreamResampler.drain`, which applies the
same edge-clamping ``numpy.interp`` semantics the batch path applies.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.antennas import AntennaPair
from repro.rfid.reader import PhaseReport

__all__ = ["PairSample", "StreamResampler"]

_TWO_PI = 2.0 * np.pi
_PI = np.pi


@dataclass(frozen=True)
class PairSample:
    """One emitted timeline instant: unwrapped Δφ of every pair.

    Attributes:
        index: position of this instant on the shared timeline.
        time: the instant, in seconds (``start + index / sample_rate``).
        delta_phi: ``(P,)`` unwrapped phase differences, in the
            resampler's pair order.
    """

    index: int
    time: float
    delta_phi: np.ndarray


@dataclass
class _AntennaState:
    """Growing unwrapped phase series of one antenna (one tag)."""

    times: list[float] = field(default_factory=list)
    unwrapped: list[float] = field(default_factory=list)
    _last_raw: float = 0.0
    _correction: float = 0.0

    def append(self, time: float, phase: float) -> None:
        """Fold one wrapped phase sample in, replicating ``np.unwrap``.

        ``np.unwrap``'s correction for sample *n* is a pure function of
        the raw step ``dd = φ_n − φ_{n−1}`` and corrections accumulate by
        a running sum — so maintaining that sum incrementally reproduces
        the batch unwrap bit-for-bit. (Scalar ``%``/``math`` calls are
        used in place of their ``np`` spellings — same float semantics,
        a fraction of the per-report overhead.)
        """
        if not math.isfinite(phase):
            raise ValueError("cannot ingest a non-finite phase sample")
        if self.times:
            dd = phase - self._last_raw
            ddmod = (dd + _PI) % _TWO_PI - _PI
            if ddmod == -_PI and dd > 0:
                ddmod = _PI
            if abs(dd) >= _PI:
                self._correction += ddmod - dd
        self._last_raw = phase
        self.times.append(time)
        self.unwrapped.append(phase + self._correction)

    @property
    def first_time(self) -> float:
        return self.times[0]

    @property
    def last_time(self) -> float:
        return self.times[-1]

    def value_at(self, when: float) -> float:
        """``np.interp`` of the unwrapped series at ``when``.

        Evaluated on the bracketing sample pair, which is exactly what
        the full-array call computes; past-the-end instants clamp to the
        last value, matching ``np.interp``'s edge behaviour.
        """
        i = bisect_right(self.times, when) - 1
        if i < 0:  # before the first sample: np.interp clamps
            return self.unwrapped[0]
        return float(
            np.interp(when, self.times[i : i + 2], self.unwrapped[i : i + 2])
        )


class StreamResampler:
    """Report-by-report construction of the shared Δφ timeline.

    Args:
        pairs: the antenna pairs to difference, fixing the order of every
            emitted :class:`PairSample`'s ``delta_phi`` vector.
        sample_rate: common timeline rate in Hz.
        min_reads_per_antenna: an antenna must accumulate this many reads
            before the timeline may start (the batch path's dead-antenna
            threshold).
        out_of_order: how to treat a report older than its antenna's
            latest — ``"raise"`` (default) or ``"drop"`` (count it in
            :attr:`dropped_reports` and move on). The same policy covers
            a report with a non-finite phase (a flaky reader emitting
            NaN must not kill a long-running ingest loop): ``"drop"``
            counts it in :attr:`dropped_reports` and skips it, strict
            mode raises.
    """

    def __init__(
        self,
        pairs: list[AntennaPair],
        sample_rate: float = 20.0,
        min_reads_per_antenna: int = 4,
        out_of_order: str = "raise",
    ) -> None:
        if not pairs:
            raise ValueError("a StreamResampler needs at least one pair")
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if out_of_order not in ("raise", "drop"):
            raise ValueError(f"unknown out_of_order policy {out_of_order!r}")
        self.pairs = list(pairs)
        self.sample_rate = float(sample_rate)
        self.min_reads_per_antenna = int(min_reads_per_antenna)
        self.out_of_order = out_of_order
        self.antenna_ids = sorted(
            {aid for pair in self.pairs for aid in pair.ids}
        )
        self._antennas = {aid: _AntennaState() for aid in self.antenna_ids}
        self._last_times: dict[int, float] = {}
        self._start: float | None = None
        self._next_index = 0
        #: Total reports discarded under the ``"drop"`` policy
        #: (out-of-order arrivals plus non-finite phases).
        self.dropped_reports = 0
        #: The non-finite subset of :attr:`dropped_reports`.
        self.dropped_nonfinite = 0

    # ------------------------------------------------------------------
    @property
    def dropped_out_of_order(self) -> int:
        """The stale-arrival subset of :attr:`dropped_reports`."""
        return self.dropped_reports - self.dropped_nonfinite

    @property
    def started(self) -> bool:
        """True once the timeline origin is fixed and emission may begin."""
        return self._start is not None

    @property
    def start_time(self) -> float | None:
        return self._start

    @property
    def emitted_count(self) -> int:
        return self._next_index

    def time_of(self, index: int) -> float:
        """Timeline instant ``index``, with the batch path's float ops."""
        if self._start is None:
            raise ValueError("the timeline has not started yet")
        return float(self._start + float(index) / self.sample_rate)

    # ------------------------------------------------------------------
    def ingest(self, report: PhaseReport) -> list[PairSample]:
        """Fold one report in; return any newly final timeline instants.

        Reports from antennas no pair references are ignored, exactly as
        the batch path never reads them.
        """
        state = self._antennas.get(report.antenna_id)
        if state is None:
            return []
        if not math.isfinite(report.phase):
            if self.out_of_order == "drop":
                self.dropped_reports += 1
                self.dropped_nonfinite += 1
                return []
            raise ValueError(
                f"non-finite phase sample from antenna {report.antenna_id} "
                f"at t={report.time}"
            )
        if state.times and report.time < state.last_time:
            if self.out_of_order == "drop":
                self.dropped_reports += 1
                return []
            raise ValueError(
                f"out-of-order report for antenna {report.antenna_id}: "
                f"{report.time} after {state.last_time}"
            )
        state.append(report.time, report.phase)
        self._last_times[report.antenna_id] = report.time
        if self._start is None:
            self._maybe_start()
        return self._emit_ready()

    def _maybe_start(self) -> None:
        if self._start is not None:
            return
        states = self._antennas.values()
        if any(
            len(state.times) < max(1, self.min_reads_per_antenna)
            for state in states
        ):
            return
        # The batch timeline origin: the latest first read. First reads
        # never change, so the origin is final the moment it is known.
        self._start = max(state.first_time for state in states)

    def _emit_ready(self) -> list[PairSample]:
        """Emit instants whose interpolated values can no longer change."""
        if self._start is None:
            return []
        end = min(self._last_times.values())
        # The batch instant count for the data seen so far; it only
        # grows as `end` grows, so emitting up to it never overshoots
        # the final batch timeline.
        count = math.floor((end - self._start) * self.sample_rate) + 1
        if self._next_index >= count:
            return []
        emitted: list[PairSample] = []
        while self._next_index < count:
            when = self.time_of(self._next_index)
            # Strictly below the frontier: an instant *at* the earliest
            # last read could still be altered by a later duplicate
            # timestamp, so it waits for the frontier to advance (or for
            # :meth:`drain`).
            if when >= end:
                break
            emitted.append(self._sample_at(self._next_index, when))
            self._next_index += 1
        return emitted

    def drain(self) -> list[PairSample]:
        """Emit every remaining instant of the finished batch timeline.

        Call once, when the stream has ended. Applies the batch path's
        final ``max(2, floor((end − start)·rate) + 1)`` instant count;
        the tail instants interpolate with edge clamping, exactly like
        ``np.interp`` over the finished arrays.
        """
        if self._start is None:
            return []
        end = min(state.last_time for state in self._antennas.values())
        if end <= self._start:
            raise ValueError("antennas have no overlapping observation window")
        count = max(
            2, int(np.floor((end - self._start) * self.sample_rate)) + 1
        )
        emitted: list[PairSample] = []
        while self._next_index < count:
            when = self.time_of(self._next_index)
            emitted.append(self._sample_at(self._next_index, when))
            self._next_index += 1
        return emitted

    def _sample_at(self, index: int, when: float) -> PairSample:
        values = {
            aid: state.value_at(when) for aid, state in self._antennas.items()
        }
        delta = np.array(
            [
                values[pair.second.antenna_id] - values[pair.first.antenna_id]
                for pair in self.pairs
            ]
        )
        return PairSample(index=index, time=when, delta_phi=delta)

    def timeline(self) -> np.ndarray:
        """The emitted instants so far, as the batch array would hold them."""
        if self._start is None:
            return np.empty(0)
        return self._start + np.arange(self._next_index) / self.sample_rate
