"""Streaming session API: ingest-as-you-go reconstruction.

RF-IDraw is a *live* virtual touch screen, so the public API tracks tags
online rather than demanding a finished measurement log:

* :class:`~repro.stream.resampler.StreamResampler` — incremental
  unwrap + interpolation: raw phase reports in, shared-timeline Δφ
  instants out, each emitted as soon as its value is final.
* :class:`~repro.stream.session.TrackingSession` — one tag's online
  pipeline: warm-up → multi-resolution positioning → step-by-step
  lobe-locked tracing, emitting trajectory points with bounded
  per-report work. :meth:`~repro.stream.session.TrackingSession.finalize`
  returns the exact batch :class:`~repro.core.pipeline.ReconstructionResult`.
  The ``prune_margin``/``prune_burn_in`` knobs drop hopeless trace
  candidates mid-stream, shrinking the steady-state per-step solve
  while provably keeping the winning trajectory identical to batch.
* :class:`~repro.stream.manager.SessionManager` — multi-tag routing by
  EPC with lifecycle events, a JSONL
  :meth:`~repro.stream.manager.SessionManager.replay` driver, and an
  eviction policy (``idle_timeout``/``max_sessions``) that
  auto-finalizes tags that stop replying, so a day-long merged stream
  holds bounded open-session state.

The batch facade ``RFIDrawSystem.reconstruct`` is a thin wrapper over
this subsystem (feed everything, finalize), so streaming and batch can
never drift apart.
"""

from repro.stream.config import SessionConfig, fold_legacy_kwargs
from repro.stream.manager import (
    ManagerStats,
    PointEmitted,
    ReplayResult,
    SessionEvent,
    SessionEventType,
    SessionEvicted,
    SessionFinalized,
    SessionManager,
    SessionStarted,
)
from repro.stream.resampler import PairSample, StreamResampler
from repro.stream.session import SessionState, TrackingSession, TrajectoryPoint

__all__ = [
    "ManagerStats",
    "PairSample",
    "PointEmitted",
    "ReplayResult",
    "SessionConfig",
    "SessionEvent",
    "SessionEventType",
    "SessionEvicted",
    "SessionFinalized",
    "SessionManager",
    "SessionStarted",
    "SessionState",
    "StreamResampler",
    "TrackingSession",
    "TrajectoryPoint",
    "fold_legacy_kwargs",
]
