"""The paper's trajectory-error metrics, with its exact offset conventions.

Section 8.1 defines two deliberately different offset-removal rules:

* **RF-IDraw**: remove the *initial-position* offset, then take
  point-by-point distances — because RF-IDraw's error is a coherent
  transform of the shape anchored at the start.
* **Antenna-array baseline**: remove the *mean* (DC) position difference,
  then take point-by-point distances — because the baseline's errors are
  independent per point, removing the initial offset would make things
  worse, and removing the mean "is favorable to the compared scheme".

Both reconstructions are compared against ground truth sampled on the
reconstruction's own timeline.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "point_errors",
    "remove_initial_offset",
    "remove_mean_offset",
    "trajectory_error_rfidraw",
    "trajectory_error_baseline",
    "initial_position_error",
]


def _check_aligned(reconstructed: np.ndarray, truth: np.ndarray) -> None:
    if reconstructed.shape != truth.shape:
        raise ValueError(
            f"trajectories must align: {reconstructed.shape} vs {truth.shape}"
        )
    if reconstructed.ndim != 2 or reconstructed.shape[1] != 2:
        raise ValueError("trajectories are (N, 2) plane coordinates")


def point_errors(reconstructed: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Plain point-by-point Euclidean distances (no offset removal)."""
    reconstructed = np.asarray(reconstructed, dtype=float)
    truth = np.asarray(truth, dtype=float)
    _check_aligned(reconstructed, truth)
    return np.linalg.norm(reconstructed - truth, axis=1)


def remove_initial_offset(
    reconstructed: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Shift the reconstruction so its first point matches the truth's."""
    reconstructed = np.asarray(reconstructed, dtype=float)
    truth = np.asarray(truth, dtype=float)
    _check_aligned(reconstructed, truth)
    return reconstructed - (reconstructed[0] - truth[0])


def remove_mean_offset(reconstructed: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Shift the reconstruction by the mean position difference (DC removal)."""
    reconstructed = np.asarray(reconstructed, dtype=float)
    truth = np.asarray(truth, dtype=float)
    _check_aligned(reconstructed, truth)
    return reconstructed - (reconstructed - truth).mean(axis=0)


def trajectory_error_rfidraw(
    reconstructed: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Per-point errors after removing the initial offset (RF-IDraw rule)."""
    return point_errors(remove_initial_offset(reconstructed, truth), truth)


def trajectory_error_baseline(
    reconstructed: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Per-point errors after removing the mean offset (baseline rule)."""
    return point_errors(remove_mean_offset(reconstructed, truth), truth)


def initial_position_error(
    reconstructed: np.ndarray, truth: np.ndarray
) -> float:
    """Distance between the first reconstructed point and the true start."""
    reconstructed = np.asarray(reconstructed, dtype=float)
    truth = np.asarray(truth, dtype=float)
    _check_aligned(reconstructed, truth)
    return float(np.linalg.norm(reconstructed[0] - truth[0]))
