"""Shape-similarity measures, used to quantify "shape resilience".

The paper argues qualitatively (Figs. 7, 10(e), 16) that RF-IDraw's
reconstructions preserve trajectory *shape* even with absolute offsets.
These metrics make that quantitative: Procrustes disparity is invariant to
translation and uniform scale (the transforms shape resilience permits),
and Hausdorff distance measures worst-case outline deviation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["procrustes_disparity", "hausdorff_distance"]


def procrustes_disparity(a: np.ndarray, b: np.ndarray) -> float:
    """Translation+scale-invariant shape disparity between two trajectories.

    Both inputs are centred and scaled to unit Frobenius norm; the result
    is the mean squared distance between corresponding points (no rotation
    fit — a reconstruction that *rotates* the writing is a real error).
    Range: 0 (identical shape) … 2.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError("trajectories must be equal-shape (N, D) arrays")
    if a.shape[0] < 2:
        raise ValueError("need at least two points")
    a = a - a.mean(axis=0)
    b = b - b.mean(axis=0)
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a < 1e-12 or norm_b < 1e-12:
        raise ValueError("degenerate (zero-extent) trajectory")
    a = a / norm_a
    b = b / norm_b
    return float(np.sum((a - b) ** 2))


def hausdorff_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Hausdorff distance between two point sets (metres)."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[1] != b.shape[1]:
        raise ValueError("point sets must share dimensionality")
    cross = np.linalg.norm(a[:, np.newaxis, :] - b[np.newaxis, :, :], axis=2)
    return float(max(cross.min(axis=1).max(), cross.min(axis=0).max()))
