"""Empirical CDFs, the way the paper plots errors (Figs. 11 and 12)."""

from __future__ import annotations

import numpy as np

__all__ = ["EmpiricalCdf"]


class EmpiricalCdf:
    """An empirical cumulative distribution over scalar samples."""

    def __init__(self, samples) -> None:
        samples = np.asarray(samples, dtype=float).ravel()
        samples = samples[np.isfinite(samples)]
        if samples.size == 0:
            raise ValueError("need at least one finite sample")
        self.samples = np.sort(samples)

    def __len__(self) -> int:
        return int(self.samples.size)

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` ∈ [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        return float(np.percentile(self.samples, q))

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def evaluate(self, x) -> np.ndarray:
        """P(sample ≤ x), vectorised over ``x``."""
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self.samples, x, side="right") / self.samples.size

    def curve(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """``(x, F(x))`` arrays spanning the sample range, for plotting."""
        if points < 2:
            raise ValueError("need at least two curve points")
        xs = np.linspace(self.samples[0], self.samples[-1], points)
        return xs, self.evaluate(xs)

    def summary(self) -> dict[str, float]:
        """The numbers the paper quotes: median and 90th percentile."""
        return {
            "median": self.median,
            "p90": self.percentile(90.0),
            "mean": float(self.samples.mean()),
            "count": float(self.samples.size),
        }
