"""Evaluation metrics, CDFs and shape similarity (paper section 8)."""

from repro.analysis.metrics import (
    initial_position_error,
    point_errors,
    remove_initial_offset,
    remove_mean_offset,
    trajectory_error_baseline,
    trajectory_error_rfidraw,
)
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.shape import hausdorff_distance, procrustes_disparity

__all__ = [
    "initial_position_error",
    "point_errors",
    "remove_initial_offset",
    "remove_mean_offset",
    "trajectory_error_baseline",
    "trajectory_error_rfidraw",
    "EmpiricalCdf",
    "hausdorff_distance",
    "procrustes_disparity",
]
